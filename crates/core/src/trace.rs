//! Request-scoped tracing over the flight recorder.
//!
//! The [`crate::telemetry`] module answers *aggregate* questions (the
//! paper's Table-II shares, P2C, per-shape Gflops). This module
//! answers *causal* ones — "why was this request slow?" — by minting a
//! trace id per request and emitting begin/end span events into the
//! lock-free, bounded [`smm_gemm::flight::FlightRecorder`] as the
//! request moves admission → coalescing → pool workers → reply.
//!
//! Three consumers sit on top:
//!
//! * [`Tracer::drain`] + [`chrome_trace_json`] — assembles begin/end
//!   pairs into complete spans and renders the Chrome trace-event JSON
//!   Perfetto loads (`ph: "X"` events; trace/span/parent ids in
//!   `args` so batch→member links survive the export);
//! * the slow-request exemplar store — [`Tracer::note_request_done`]
//!   pins the full span tree of any request whose latency breaches the
//!   configured threshold, worst-K surfaced in `TelemetryReport`;
//! * the windowed rate estimators live in [`crate::rate`] (fed by
//!   telemetry, not by spans — they must stay cheap enough for every
//!   call even when tracing is off).
//!
//! Span parentage crosses API layers through a thread-local current
//! span (so the serve dispatcher's batch span parents the `gemm_batch`
//! root without threading arguments through every signature) and
//! crosses *threads* through the `Copy` [`TraceCtx`] captured into
//! pool-worker closures.
//!
//! A disabled tracer holds no state and every operation is a single
//! branch — the zero-overhead discipline of the telemetry recorder,
//! enforced by the same `smm-analyze` clock fence (this module's one
//! `Instant::now` carries an audited waiver).

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use smm_sync::sync::atomic::{AtomicU64, Ordering};
use smm_sync::sync::Mutex;

use smm_gemm::flight::{thread_tid, EventKind, FlightRecorder, SpanEvent};

/// Worst-K capacity of the slow-request exemplar store.
pub const EXEMPLAR_CAP: usize = 4;

/// What a span covers. The discriminant is the wire/ring tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanName {
    /// One serve request, submission to reply.
    Request = 0,
    /// Admission (validate + enqueue) inside `Client::submit`.
    Admission = 1,
    /// One `Smm::gemm` call.
    Gemm = 2,
    /// One `Smm::gemm_batch` call.
    GemmBatch = 3,
    /// One coalesced dispatcher group (its member requests are
    /// children; the group's `gemm`/`gemm_batch` span nests inside).
    CoalescedBatch = 4,
    /// One member request's window inside a coalesced batch (parented
    /// by the batch span, but carrying the member's own trace id).
    Member = 5,
    /// One pool-worker task of a parallel section.
    Worker = 6,
    /// Reply fan-out (copy-out + wakeups) of a coalesced batch.
    Reply = 7,
    /// A tag this build does not know (forward compatibility).
    Unknown = 255,
}

impl SpanName {
    /// Stable snake_case name (the Chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanName::Request => "request",
            SpanName::Admission => "admission",
            SpanName::Gemm => "gemm",
            SpanName::GemmBatch => "gemm_batch",
            SpanName::CoalescedBatch => "coalesced_batch",
            SpanName::Member => "member",
            SpanName::Worker => "worker",
            SpanName::Reply => "reply",
            SpanName::Unknown => "unknown",
        }
    }

    fn from_u8(tag: u8) -> SpanName {
        match tag {
            0 => SpanName::Request,
            1 => SpanName::Admission,
            2 => SpanName::Gemm,
            3 => SpanName::GemmBatch,
            4 => SpanName::CoalescedBatch,
            5 => SpanName::Member,
            6 => SpanName::Worker,
            7 => SpanName::Reply,
            _ => SpanName::Unknown,
        }
    }
}

/// Pack a GEMM shape into a span's payload word (21 bits per dim —
/// far above the wire protocol's 4096-dim cap).
pub fn shape_arg(m: usize, n: usize, k: usize) -> u64 {
    ((m as u64 & 0x1F_FFFF) << 42) | ((n as u64 & 0x1F_FFFF) << 21) | (k as u64 & 0x1F_FFFF)
}

/// A `Copy` capture of "where we are in the trace", for carrying
/// parentage across threads (into pool-worker closures) or across time
/// (a queued request between submission and dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Trace id (0 = not tracing).
    pub trace: u64,
    /// Span id new spans should parent under (0 = root).
    pub parent: u64,
}

impl TraceCtx {
    /// The empty context: spans opened in it are untraced no-ops.
    pub fn none() -> Self {
        TraceCtx::default()
    }
}

/// A begun-but-not-ended span owned by non-RAII code (the serve
/// request span begins on the submitting thread and ends on the
/// dispatcher). `Copy`, so it can sit in a queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenSpan {
    /// Trace id (0 = untraced; `end_span` ignores it).
    pub trace: u64,
    /// Span id.
    pub span: u64,
    tag: u8,
}

thread_local! {
    /// The calling thread's current (tracer id, trace, span) —
    /// consulted for implicit parentage, saved/restored by SpanGuard.
    static CURRENT: Cell<(u64, u64, u64)> = const { Cell::new((0, 0, 0)) };
}

/// Tracer-instance allocator so a thread-local parent from one `Smm`'s
/// tracer is never mistaken for another's.
// Relaxed monotonic counter; only distinctness matters.
static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

/// The single audited clock read of the tracing subsystem. Reached
/// only through an enabled [`Tracer`]: a disabled tracer has no inner
/// state and never calls in, mirroring `telemetry::now_if`.
fn clock_now() -> Instant {
    // lint:allow(instant-now) -- tracing's one audited clock site: span timestamps, reachable only when tracing was explicitly enabled at build time
    Instant::now()
}

struct TracerInner {
    id: u64,
    epoch: Instant,
    flight: FlightRecorder,
    /// Id mints; relaxed monotonic counters, uniqueness only.
    next_trace: AtomicU64,
    next_span: AtomicU64,
    threshold_ns: u64,
    exemplars: Mutex<Vec<TraceExemplar>>,
}

/// Request-scoped span tracing for one `Smm` instance. Cheap to clone
/// (shared `Arc`); the disabled tracer is a `None` and every operation
/// on it is a single branch with no clock read.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// An enabled tracer. Requests slower than `slow_threshold` are
    /// pinned in the exemplar store when noted.
    pub fn new(slow_threshold: Duration) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: clock_now(),
                flight: FlightRecorder::new(),
                next_trace: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                threshold_ns: slow_threshold.as_nanos().min(u64::MAX as u128) as u64,
                exemplars: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op tracer.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn now_ns(inner: &TracerInner) -> u64 {
        clock_now()
            .saturating_duration_since(inner.epoch)
            .as_nanos() as u64
    }

    fn emit(
        inner: &TracerInner,
        kind: EventKind,
        trace: u64,
        span: u64,
        parent: u64,
        tag: u8,
        arg: u64,
    ) {
        inner.flight.emit(&SpanEvent {
            kind,
            trace,
            span,
            parent,
            ts_ns: Self::now_ns(inner),
            name: tag,
            tid: thread_tid(),
            arg,
        });
    }

    /// The calling thread's current context under *this* tracer
    /// (empty if another tracer or nothing is current). Capture this
    /// on the submitting thread and pass it into worker closures.
    pub fn current_ctx(&self) -> TraceCtx {
        let Some(inner) = &self.inner else {
            return TraceCtx::none();
        };
        let (id, trace, span) = CURRENT.with(|c| c.get());
        if id == inner.id {
            TraceCtx {
                trace,
                parent: span,
            }
        } else {
            TraceCtx::none()
        }
    }

    /// Open a span under the thread's current context: same trace and
    /// parented there if one is current, otherwise a fresh root trace.
    pub fn span(&self, name: SpanName, arg: u64) -> SpanGuard<'_> {
        let ctx = self.current_ctx();
        if ctx.trace != 0 {
            self.span_in(ctx, name, arg)
        } else {
            self.root(name, arg)
        }
    }

    /// Open a root span of a fresh trace, ignoring any current context.
    pub fn root(&self, name: SpanName, arg: u64) -> SpanGuard<'_> {
        let Some(inner) = self.inner.as_deref() else {
            return SpanGuard::noop();
        };
        let trace = inner.next_trace.fetch_add(1, Ordering::Relaxed);
        self.begin_guard(inner, trace, 0, name, arg)
    }

    /// Open a span in an explicit context (cross-thread parentage).
    /// A no-op if `ctx` is empty — worker closures can call this
    /// unconditionally.
    pub fn span_in(&self, ctx: TraceCtx, name: SpanName, arg: u64) -> SpanGuard<'_> {
        let Some(inner) = self.inner.as_deref() else {
            return SpanGuard::noop();
        };
        if ctx.trace == 0 {
            return SpanGuard::noop();
        }
        self.begin_guard(inner, ctx.trace, ctx.parent, name, arg)
    }

    fn begin_guard<'t>(
        &'t self,
        inner: &'t TracerInner,
        trace: u64,
        parent: u64,
        name: SpanName,
        arg: u64,
    ) -> SpanGuard<'t> {
        let span = inner.next_span.fetch_add(1, Ordering::Relaxed);
        Self::emit(
            inner,
            EventKind::Begin,
            trace,
            span,
            parent,
            name as u8,
            arg,
        );
        let prev = CURRENT.with(|c| c.replace((inner.id, trace, span)));
        SpanGuard {
            inner: Some(inner),
            trace,
            span,
            tag: name as u8,
            prev,
        }
    }

    /// Begin a span that will be ended manually (possibly on another
    /// thread) with [`Tracer::end_span`]. `parent` follows
    /// [`TraceCtx`] semantics; `ctx.trace == 0` mints a fresh trace.
    /// Does not touch the thread-local current span.
    pub fn begin_span(&self, ctx: TraceCtx, name: SpanName, arg: u64) -> OpenSpan {
        let Some(inner) = self.inner.as_deref() else {
            return OpenSpan::default();
        };
        let trace = if ctx.trace == 0 {
            inner.next_trace.fetch_add(1, Ordering::Relaxed)
        } else {
            ctx.trace
        };
        let span = inner.next_span.fetch_add(1, Ordering::Relaxed);
        Self::emit(
            inner,
            EventKind::Begin,
            trace,
            span,
            ctx.parent,
            name as u8,
            arg,
        );
        OpenSpan {
            trace,
            span,
            tag: name as u8,
        }
    }

    /// Close a span begun with [`Tracer::begin_span`]. A no-op for the
    /// default (untraced) `OpenSpan`.
    pub fn end_span(&self, open: OpenSpan) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        if open.trace == 0 {
            return;
        }
        Self::emit(inner, EventKind::End, open.trace, open.span, 0, open.tag, 0);
    }

    /// Drain the flight recorder and assemble its events into complete
    /// spans (begin/end pairs; orphans from ring wraparound dropped),
    /// sorted by start time.
    pub fn drain(&self) -> Vec<AssembledSpan> {
        match &self.inner {
            Some(inner) => assemble(&inner.flight.drain()),
            None => Vec::new(),
        }
    }

    /// Non-destructively assemble the spans of one trace still in the
    /// flight recorder (the exemplar capture path).
    pub fn snapshot_trace(&self, trace: u64) -> Vec<AssembledSpan> {
        match &self.inner {
            Some(inner) => {
                let events: Vec<SpanEvent> = inner
                    .flight
                    .snapshot()
                    .into_iter()
                    .filter(|e| e.trace == trace)
                    .collect();
                assemble(&events)
            }
            None => Vec::new(),
        }
    }

    /// The configured slow-request threshold in nanoseconds
    /// (`u64::MAX` when disabled).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.inner.as_deref().map_or(u64::MAX, |i| i.threshold_ns)
    }

    /// Tell the exemplar store a request finished: if `total_ns`
    /// breaches the threshold, the trace's span tree is pinned (worst
    /// [`EXEMPLAR_CAP`] kept, by latency).
    pub fn note_request_done(&self, trace: u64, total_ns: u64, label: &str) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        if trace == 0 || total_ns < inner.threshold_ns {
            return;
        }
        // Cheap threshold pre-check passed: now pay for the ring scan.
        let spans = self.snapshot_trace(trace);
        let mut worst = inner.exemplars.lock().unwrap();
        if worst.iter().any(|e| e.trace == trace) {
            return;
        }
        let at = worst
            .iter()
            .position(|e| e.total_ns < total_ns)
            .unwrap_or(worst.len());
        worst.insert(
            at,
            TraceExemplar {
                trace,
                total_ns,
                label: label.to_string(),
                spans,
            },
        );
        worst.truncate(EXEMPLAR_CAP);
    }

    /// Current worst-K slow-request exemplars (worst first).
    pub fn exemplars(&self) -> Vec<TraceExemplar> {
        match &self.inner {
            Some(inner) => inner.exemplars.lock().unwrap().clone(),
            None => Vec::new(),
        }
    }
}

/// RAII span: emits `Begin` on creation, `End` on drop, and makes
/// itself the thread's current span in between (so nested calls —
/// including across crate layers — parent correctly).
pub struct SpanGuard<'t> {
    inner: Option<&'t TracerInner>,
    trace: u64,
    span: u64,
    tag: u8,
    prev: (u64, u64, u64),
}

impl<'t> SpanGuard<'t> {
    fn noop() -> Self {
        SpanGuard {
            inner: None,
            trace: 0,
            span: 0,
            tag: 0,
            prev: (0, 0, 0),
        }
    }

    /// This span's trace id (0 if untraced).
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// This span's id (0 if untraced).
    pub fn span(&self) -> u64 {
        self.span
    }

    /// Context for children of this span (capture into worker
    /// closures; empty if untraced).
    pub fn ctx(&self) -> TraceCtx {
        if self.inner.is_some() {
            TraceCtx {
                trace: self.trace,
                parent: self.span,
            }
        } else {
            TraceCtx::none()
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner {
            Tracer::emit(inner, EventKind::End, self.trace, self.span, 0, self.tag, 0);
            CURRENT.with(|c| c.set(self.prev));
        }
    }
}

/// One begin/end pair from the flight recorder, resolved into a
/// complete span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembledSpan {
    /// Trace id.
    pub trace: u64,
    /// Span id.
    pub span: u64,
    /// Parent span id (0 = root; may belong to a *different* trace —
    /// coalesced-batch spans parent member spans across traces).
    pub parent: u64,
    /// What the span covers.
    pub name: SpanName,
    /// Start, ns since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Flight-recorder tid of the emitting thread (pool workers 1..=N).
    pub tid: u32,
    /// Payload word (shape code, batch size, …).
    pub arg: u64,
}

/// Pair `Begin`/`End` events by `(trace, span)` into complete spans,
/// dropping orphans (ring wraparound overwrites oldest events first,
/// so a surviving end may have lost its begin and vice versa). Sorted
/// by start time, then span id.
pub fn assemble(events: &[SpanEvent]) -> Vec<AssembledSpan> {
    let mut begins: HashMap<(u64, u64), &SpanEvent> = HashMap::new();
    let mut ends: HashMap<(u64, u64), u64> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::Begin => {
                begins.insert((e.trace, e.span), e);
            }
            EventKind::End => {
                ends.insert((e.trace, e.span), e.ts_ns);
            }
        }
    }
    let mut spans: Vec<AssembledSpan> = begins
        .into_iter()
        .filter_map(|(key, b)| {
            let end_ts = *ends.get(&key)?;
            Some(AssembledSpan {
                trace: b.trace,
                span: b.span,
                parent: b.parent,
                name: SpanName::from_u8(b.name),
                start_ns: b.ts_ns,
                dur_ns: end_ts.saturating_sub(b.ts_ns),
                tid: b.tid,
                arg: b.arg,
            })
        })
        .collect();
    spans.sort_by_key(|s| (s.start_ns, s.span));
    spans
}

/// A pinned slow-request span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceExemplar {
    /// The request's trace id.
    pub trace: u64,
    /// End-to-end latency that breached the threshold.
    pub total_ns: u64,
    /// Human label (site and shape).
    pub label: String,
    /// The trace's spans as captured at completion.
    pub spans: Vec<AssembledSpan>,
}

/// Render assembled spans as Chrome trace-event JSON (the format
/// `chrome://tracing` and Perfetto load). Spans become `ph: "X"`
/// complete events with microsecond timestamps; trace/span/parent ids
/// ride in `args` so the batch→member structure survives the export.
pub fn chrome_trace_json(spans: &[AssembledSpan]) -> String {
    let mut s = String::with_capacity(256 + spans.len() * 160);
    s.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, sp) in spans.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"smm\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{},\"arg\":{}}}}}",
            sp.name.name(),
            sp.start_ns / 1_000,
            sp.start_ns % 1_000,
            sp.dur_ns / 1_000,
            sp.dur_ns % 1_000,
            sp.tid,
            sp.trace,
            sp.span,
            sp.parent,
            sp.arg,
        ));
    }
    s.push_str("\n]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_gemm::flight::RING_SLOTS;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert_eq!(t.current_ctx(), TraceCtx::none());
        {
            let g = t.span(SpanName::Gemm, 1);
            assert_eq!(g.trace(), 0);
            assert_eq!(g.ctx(), TraceCtx::none());
            let open = t.begin_span(TraceCtx::none(), SpanName::Request, 0);
            assert_eq!(open, OpenSpan::default());
            t.end_span(open);
        }
        assert!(t.drain().is_empty());
        t.note_request_done(1, u64::MAX, "x");
        assert!(t.exemplars().is_empty());
    }

    #[test]
    fn guards_nest_through_the_thread_local() {
        let t = Tracer::new(Duration::from_secs(3600));
        let (root_trace, root_span, child_span);
        {
            let root = t.root(SpanName::GemmBatch, shape_arg(8, 8, 8));
            root_trace = root.trace();
            root_span = root.span();
            assert_eq!(
                t.current_ctx(),
                TraceCtx {
                    trace: root_trace,
                    parent: root_span
                }
            );
            let child = t.span(SpanName::Worker, 3);
            child_span = child.span();
            assert_eq!(child.trace(), root_trace, "implicit parent shares trace");
        }
        assert_eq!(t.current_ctx(), TraceCtx::none(), "guards restore");
        let spans = t.drain();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.span == root_span).unwrap();
        let child = spans.iter().find(|s| s.span == child_span).unwrap();
        assert_eq!(root.parent, 0);
        assert_eq!(root.name, SpanName::GemmBatch);
        assert_eq!(root.arg, shape_arg(8, 8, 8));
        assert_eq!(child.parent, root_span);
        assert_eq!(child.trace, root_trace);
        assert_eq!(child.name, SpanName::Worker);
        // Child nests inside the parent interval.
        assert!(child.start_ns >= root.start_ns);
        assert!(child.start_ns + child.dur_ns <= root.start_ns + root.dur_ns);
        assert!(t.drain().is_empty(), "drain consumed the events");
    }

    #[test]
    fn manual_spans_cross_threads() {
        let t = Tracer::new(Duration::from_secs(3600));
        let open = t.begin_span(TraceCtx::none(), SpanName::Request, 7);
        assert_ne!(open.trace, 0);
        let t2 = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || t2.end_span(open));
        });
        let spans = t.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, SpanName::Request);
        assert_eq!(spans[0].trace, open.trace);
    }

    #[test]
    fn batch_links_member_spans_across_traces() {
        // The serve shape: a coalesced-batch span in its own trace
        // parenting member spans that keep their request trace ids.
        let t = Tracer::new(Duration::from_secs(3600));
        let m1 = t.begin_span(TraceCtx::none(), SpanName::Request, 0);
        let m2 = t.begin_span(TraceCtx::none(), SpanName::Request, 0);
        let batch = t.root(SpanName::CoalescedBatch, 2);
        let c1 = t.begin_span(
            TraceCtx {
                trace: m1.trace,
                parent: batch.span(),
            },
            SpanName::Member,
            0,
        );
        let c2 = t.begin_span(
            TraceCtx {
                trace: m2.trace,
                parent: batch.span(),
            },
            SpanName::Member,
            1,
        );
        t.end_span(c1);
        t.end_span(c2);
        let batch_span = batch.span();
        drop(batch);
        t.end_span(m1);
        t.end_span(m2);
        let spans = t.drain();
        let members: Vec<_> = spans
            .iter()
            .filter(|s| s.name == SpanName::Member && s.parent == batch_span)
            .collect();
        assert_eq!(members.len(), 2);
        assert_ne!(members[0].trace, members[1].trace, "distinct trace ids");
    }

    #[test]
    fn exemplar_store_pins_worst_k_span_trees() {
        let t = Tracer::new(Duration::from_nanos(0));
        let mut traces = Vec::new();
        for i in 0..(EXEMPLAR_CAP as u64 + 3) {
            let open = t.begin_span(TraceCtx::none(), SpanName::Request, i);
            t.end_span(open);
            t.note_request_done(open.trace, 1000 + i, &format!("req-{i}"));
            traces.push(open.trace);
        }
        let ex = t.exemplars();
        assert_eq!(ex.len(), EXEMPLAR_CAP);
        // Worst first, and only the slowest K survive.
        assert_eq!(ex[0].total_ns, 1000 + EXEMPLAR_CAP as u64 + 2);
        assert!(ex.windows(2).all(|w| w[0].total_ns >= w[1].total_ns));
        for e in &ex {
            assert_eq!(e.spans.len(), 1, "span tree captured");
            assert_eq!(e.spans[0].trace, e.trace);
            assert!(e.label.starts_with("req-"));
        }
        // Below-threshold requests are never pinned.
        let t2 = Tracer::new(Duration::from_secs(3600));
        let open = t2.begin_span(TraceCtx::none(), SpanName::Request, 0);
        t2.end_span(open);
        t2.note_request_done(open.trace, 5, "fast");
        assert!(t2.exemplars().is_empty());
    }

    #[test]
    fn chrome_export_has_required_keys() {
        let t = Tracer::new(Duration::from_secs(3600));
        {
            let _g = t.span(SpanName::Gemm, shape_arg(4, 4, 4));
        }
        let json = chrome_trace_json(&t.drain());
        for key in [
            "\"traceEvents\":[",
            "\"ph\":\"X\"",
            "\"ts\":",
            "\"dur\":",
            "\"pid\":1",
            "\"tid\":",
            "\"name\":\"gemm\"",
            "\"trace\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(chrome_trace_json(&[]).contains("\"traceEvents\":["));
    }

    /// The satellite's hammer: 8 threads overflow the rings with
    /// nested spans; everything drained must still be well-formed —
    /// every surviving begin has its end (assembly guarantees it),
    /// children nest inside parents, and no span leaks into a foreign
    /// trace.
    #[test]
    fn wraparound_hammer_assembles_well_formed_spans() {
        let t = Tracer::new(Duration::from_secs(3600));
        let events_per_thread = RING_SLOTS * 3; // 3 laps per ring
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..events_per_thread as u64 / 4 {
                        let root = t.root(SpanName::GemmBatch, i);
                        let _child = t.span_in(root.ctx(), SpanName::Worker, i);
                    }
                });
            }
        });
        let spans = t.drain();
        assert!(!spans.is_empty(), "hammer left spans behind");
        let by_id: HashMap<u64, &AssembledSpan> = spans.iter().map(|s| (s.span, s)).collect();
        let mut nested_checked = 0usize;
        for sp in &spans {
            assert_ne!(sp.trace, 0);
            assert!(matches!(sp.name, SpanName::GemmBatch | SpanName::Worker));
            if sp.parent != 0 {
                // Orphaned parents are legal (overwritten by wrap);
                // surviving parents must contain their children and
                // share the trace (this workload never crosses traces).
                if let Some(parent) = by_id.get(&sp.parent) {
                    assert_eq!(parent.trace, sp.trace, "foreign-trace leakage");
                    assert!(sp.start_ns >= parent.start_ns, "child starts before parent");
                    assert!(
                        sp.start_ns + sp.dur_ns <= parent.start_ns + parent.dur_ns,
                        "child outlives parent"
                    );
                    nested_checked += 1;
                }
            }
        }
        assert!(nested_checked > 0, "no parent/child pairs survived");
        // Distinct traces stayed distinct: every trace has at most one
        // root GemmBatch and at most one Worker child.
        let mut per_trace: HashMap<u64, usize> = HashMap::new();
        for sp in &spans {
            *per_trace.entry(sp.trace).or_default() += 1;
        }
        assert!(per_trace.values().all(|&c| c <= 2), "trace id reused");
    }

    #[test]
    fn assemble_drops_orphans() {
        let mk = |kind, trace, span, ts| SpanEvent {
            kind,
            trace,
            span,
            parent: 0,
            ts_ns: ts,
            name: SpanName::Gemm as u8,
            tid: 1,
            arg: 0,
        };
        let events = vec![
            mk(EventKind::Begin, 1, 10, 100),
            mk(EventKind::End, 1, 10, 250),
            mk(EventKind::Begin, 1, 11, 300), // end lost
            mk(EventKind::End, 2, 20, 400),   // begin lost
        ];
        let spans = assemble(&events);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].span, 10);
        assert_eq!(spans[0].dur_ns, 150);
    }
}
