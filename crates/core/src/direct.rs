//! Packing-optional micro-kernels.
//!
//! §IV of the paper argues that a reference SMM implementation must be
//! *packing-optional*: when `M`/`N` are small the `O(M·K + K·N)`
//! packing pass cannot be amortized (the P2C model of §III-A), so the
//! kernel must be able to stream operands straight from the caller's
//! column-major storage.
//!
//! Two operand facts make that possible:
//!
//! * a column-major `A` column is contiguous, so the kernel's `mr`-row
//!   vector loads work *unpacked* by replacing the packed stride `mr`
//!   with `lda` ([`ukr_bp`] takes the stride as a parameter);
//! * a column-major `B` has its `nr` row elements strided by `ldb`, so
//!   an unpacked-`B` kernel gathers scalars ([`ukr_bd`]) — profitable
//!   exactly when the gather is cheaper than a full packing pass.

use smm_kernels::Scalar;

// Wide-vector plans (SVE-512) choose tiles up to 32 rows; the dynamic
// kernel's stack accumulator is sized to admit them (32x32 f32 = 4 KiB).
const DYN_MAX: usize = 32;

/// Raw core of [`ukr_bp`].
///
/// # Safety
/// `c` must be valid for exclusive reads and writes of the elements
/// `c + j*ldc + i` for `i < MR`, `j < NR`.
// SAFETY: an `unsafe fn` declaration — callers discharge the tile-
// footprint contract in `# Safety` above; the body re-asserts operand
// lengths before any raw write.
#[allow(clippy::too_many_arguments)]
pub unsafe fn ukr_bp_ptr<S: Scalar, const MR: usize, const NR: usize>(
    kc: usize,
    alpha: S,
    a: &[S],
    a_stride: usize,
    b: &[S],
    c: *mut S,
    ldc: usize,
) {
    assert!(a_stride >= MR, "A stride must cover the tile rows");
    assert!(
        kc == 0 || a.len() >= (kc - 1) * a_stride + MR,
        "A operand too short"
    );
    assert!(b.len() >= kc * NR, "packed B sliver too short");
    assert!(ldc >= MR, "ldc must cover the tile rows");
    let mut acc = [[S::ZERO; NR]; MR];
    for p in 0..kc {
        let av = &a[p * a_stride..p * a_stride + MR];
        let bv = &b[p * NR..(p + 1) * NR];
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i][j] = acc[i][j].madd(ai, bv[j]);
            }
        }
    }
    #[allow(clippy::needless_range_loop)]
    for j in 0..NR {
        for i in 0..MR {
            // SAFETY: (i, j) stays inside the MR x NR tile footprint
            // the caller contractually owns through `c`.
            unsafe {
                let p = c.add(j * ldc + i);
                *p = (*p).madd(alpha, acc[i][j]);
            }
        }
    }
}

/// Micro-kernel with stride-parameterized `A` and *packed* `B`.
///
/// `a[p*a_stride + i]` and `b[p*NR + j]`; `a_stride = MR` reproduces the
/// fully packed kernel, `a_stride = lda` streams `A` unpacked.
pub fn ukr_bp<S: Scalar, const MR: usize, const NR: usize>(
    kc: usize,
    alpha: S,
    a: &[S],
    a_stride: usize,
    b: &[S],
    c: &mut [S],
    ldc: usize,
) {
    assert!(
        ldc >= MR && c.len() >= (NR - 1) * ldc + MR,
        "C block out of bounds"
    );
    // SAFETY: the assert above proves the slice covers the full
    // column-major tile footprint, and `&mut` makes it exclusive.
    unsafe { ukr_bp_ptr::<S, MR, NR>(kc, alpha, a, a_stride, b, c.as_mut_ptr(), ldc) }
}

/// Raw core of [`ukr_bd`].
///
/// # Safety
/// `c` must be valid for exclusive reads and writes of the elements
/// `c + j*ldc + i` for `i < MR`, `j < NR`.
// SAFETY: an `unsafe fn` declaration — callers discharge the tile-
// footprint contract in `# Safety` above; the body re-asserts operand
// lengths before any raw write.
#[allow(clippy::too_many_arguments)]
pub unsafe fn ukr_bd_ptr<S: Scalar, const MR: usize, const NR: usize>(
    kc: usize,
    alpha: S,
    a: &[S],
    a_stride: usize,
    b: &[S],
    ldb: usize,
    c: *mut S,
    ldc: usize,
) {
    assert!(a_stride >= MR, "A stride must cover the tile rows");
    assert!(
        kc == 0 || a.len() >= (kc - 1) * a_stride + MR,
        "A operand too short"
    );
    assert!(
        ldb >= kc && (NR == 0 || b.len() >= (NR - 1) * ldb + kc),
        "B operand too short"
    );
    assert!(ldc >= MR, "ldc must cover the tile rows");
    let mut acc = [[S::ZERO; NR]; MR];
    for p in 0..kc {
        let av = &a[p * a_stride..p * a_stride + MR];
        for j in 0..NR {
            let bj = b[j * ldb + p];
            for i in 0..MR {
                acc[i][j] = acc[i][j].madd(av[i], bj);
            }
        }
    }
    #[allow(clippy::needless_range_loop)]
    for j in 0..NR {
        for i in 0..MR {
            // SAFETY: (i, j) stays inside the MR x NR tile footprint
            // the caller contractually owns through `c`.
            unsafe {
                let p = c.add(j * ldc + i);
                *p = (*p).madd(alpha, acc[i][j]);
            }
        }
    }
}

/// Micro-kernel with stride-parameterized `A` and *unpacked*
/// column-major `B`: `b[j*ldb + p]`.
#[allow(clippy::too_many_arguments)]
pub fn ukr_bd<S: Scalar, const MR: usize, const NR: usize>(
    kc: usize,
    alpha: S,
    a: &[S],
    a_stride: usize,
    b: &[S],
    ldb: usize,
    c: &mut [S],
    ldc: usize,
) {
    assert!(
        ldc >= MR && c.len() >= (NR - 1) * ldc + MR,
        "C block out of bounds"
    );
    // SAFETY: the assert above proves the slice covers the full
    // column-major tile footprint, and `&mut` makes it exclusive.
    unsafe { ukr_bd_ptr::<S, MR, NR>(kc, alpha, a, a_stride, b, ldb, c.as_mut_ptr(), ldc) }
}

/// Raw core of [`ukr_bp_dyn`].
///
/// # Safety
/// `c` must be valid for exclusive reads and writes of the elements
/// `c + j*ldc + i` for `i < mr`, `j < nr`.
// SAFETY: an `unsafe fn` declaration — callers discharge the tile-
// footprint contract in `# Safety` above; the body re-asserts operand
// lengths before any raw write.
#[allow(clippy::too_many_arguments)]
pub unsafe fn ukr_bp_dyn_ptr<S: Scalar>(
    mr: usize,
    nr: usize,
    kc: usize,
    alpha: S,
    a: &[S],
    a_stride: usize,
    b: &[S],
    c: *mut S,
    ldc: usize,
) {
    assert!(
        mr <= DYN_MAX && nr <= DYN_MAX,
        "dynamic tile {mr}x{nr} out of range"
    );
    assert!(ldc >= mr, "ldc must cover the tile rows");
    let mut acc = [[S::ZERO; DYN_MAX]; DYN_MAX];
    for p in 0..kc {
        for i in 0..mr {
            let ai = a[p * a_stride + i];
            for j in 0..nr {
                acc[i][j] = acc[i][j].madd(ai, b[p * nr + j]);
            }
        }
    }
    #[allow(clippy::needless_range_loop)]
    for j in 0..nr {
        for i in 0..mr {
            // SAFETY: (i, j) stays inside the mr x nr tile footprint
            // the caller contractually owns through `c`.
            unsafe {
                let p = c.add(j * ldc + i);
                *p = (*p).madd(alpha, acc[i][j]);
            }
        }
    }
}

/// Dynamic-shape fallbacks (edges outside the instantiated set).
#[allow(clippy::too_many_arguments)]
pub fn ukr_bp_dyn<S: Scalar>(
    mr: usize,
    nr: usize,
    kc: usize,
    alpha: S,
    a: &[S],
    a_stride: usize,
    b: &[S],
    c: &mut [S],
    ldc: usize,
) {
    assert!(
        ldc >= mr && nr >= 1 && c.len() >= (nr - 1) * ldc + mr,
        "C block out of bounds"
    );
    // SAFETY: the assert above proves the slice covers the full
    // column-major tile footprint, and `&mut` makes it exclusive.
    unsafe { ukr_bp_dyn_ptr(mr, nr, kc, alpha, a, a_stride, b, c.as_mut_ptr(), ldc) }
}

/// Raw core of [`ukr_bd_dyn`].
///
/// # Safety
/// `c` must be valid for exclusive reads and writes of the elements
/// `c + j*ldc + i` for `i < mr`, `j < nr`.
// SAFETY: an `unsafe fn` declaration — callers discharge the tile-
// footprint contract in `# Safety` above; the body re-asserts operand
// lengths before any raw write.
#[allow(clippy::too_many_arguments)]
pub unsafe fn ukr_bd_dyn_ptr<S: Scalar>(
    mr: usize,
    nr: usize,
    kc: usize,
    alpha: S,
    a: &[S],
    a_stride: usize,
    b: &[S],
    ldb: usize,
    c: *mut S,
    ldc: usize,
) {
    assert!(
        mr <= DYN_MAX && nr <= DYN_MAX,
        "dynamic tile {mr}x{nr} out of range"
    );
    assert!(ldc >= mr, "ldc must cover the tile rows");
    let mut acc = [[S::ZERO; DYN_MAX]; DYN_MAX];
    for p in 0..kc {
        for j in 0..nr {
            let bj = b[j * ldb + p];
            for i in 0..mr {
                acc[i][j] = acc[i][j].madd(a[p * a_stride + i], bj);
            }
        }
    }
    #[allow(clippy::needless_range_loop)]
    for j in 0..nr {
        for i in 0..mr {
            // SAFETY: (i, j) stays inside the mr x nr tile footprint
            // the caller contractually owns through `c`.
            unsafe {
                let p = c.add(j * ldc + i);
                *p = (*p).madd(alpha, acc[i][j]);
            }
        }
    }
}

/// Dynamic-shape unpacked-`B` fallback.
#[allow(clippy::too_many_arguments)]
pub fn ukr_bd_dyn<S: Scalar>(
    mr: usize,
    nr: usize,
    kc: usize,
    alpha: S,
    a: &[S],
    a_stride: usize,
    b: &[S],
    ldb: usize,
    c: &mut [S],
    ldc: usize,
) {
    assert!(
        ldc >= mr && nr >= 1 && c.len() >= (nr - 1) * ldc + mr,
        "C block out of bounds"
    );
    // SAFETY: the assert above proves the slice covers the full
    // column-major tile footprint, and `&mut` makes it exclusive.
    unsafe { ukr_bd_dyn_ptr(mr, nr, kc, alpha, a, a_stride, b, ldb, c.as_mut_ptr(), ldc) }
}

/// A shape-dispatched packing-optional kernel.
#[derive(Debug, Clone, Copy)]
pub struct DirectKernel {
    mr: usize,
    nr: usize,
}

macro_rules! dispatch_shapes {
    ($self:ident, $mac:ident, $($args:tt)*) => {
        match ($self.mr, $self.nr) {
            (16, 4) => $mac!(16, 4, $($args)*),
            (12, 4) => $mac!(12, 4, $($args)*),
            (8, 12) => $mac!(8, 12, $($args)*),
            (8, 8) => $mac!(8, 8, $($args)*),
            (8, 4) => $mac!(8, 4, $($args)*),
            (4, 8) => $mac!(4, 8, $($args)*),
            (4, 4) => $mac!(4, 4, $($args)*),
            (4, 2) => $mac!(4, 2, $($args)*),
            (2, 4) => $mac!(2, 4, $($args)*),
            (2, 2) => $mac!(2, 2, $($args)*),
            (1, 4) => $mac!(1, 4, $($args)*),
            (4, 1) => $mac!(4, 1, $($args)*),
            (1, 1) => $mac!(1, 1, $($args)*),
            _ => $mac!(dyn, dyn, $($args)*),
        }
    };
}

impl DirectKernel {
    /// Kernel for a tile shape (any shape up to 32×32; common shapes
    /// are statically unrolled).
    pub fn new(mr: usize, nr: usize) -> Self {
        assert!(
            (1..=DYN_MAX).contains(&mr) && (1..=DYN_MAX).contains(&nr),
            "tile {mr}x{nr} out of range"
        );
        DirectKernel { mr, nr }
    }

    /// Tile rows.
    pub fn mr(&self) -> usize {
        self.mr
    }

    /// Tile columns.
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// Run with packed `B`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_bp<S: Scalar>(
        &self,
        kc: usize,
        alpha: S,
        a: &[S],
        a_stride: usize,
        b: &[S],
        c: &mut [S],
        ldc: usize,
    ) {
        macro_rules! call {
            (dyn, dyn, $($x:tt)*) => {
                ukr_bp_dyn(self.mr, self.nr, kc, alpha, a, a_stride, b, c, ldc)
            };
            ($mr:literal, $nr:literal, $($x:tt)*) => {
                ukr_bp::<S, $mr, $nr>(kc, alpha, a, a_stride, b, c, ldc)
            };
        }
        dispatch_shapes!(self, call,)
    }

    /// Run with unpacked column-major `B`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_bd<S: Scalar>(
        &self,
        kc: usize,
        alpha: S,
        a: &[S],
        a_stride: usize,
        b: &[S],
        ldb: usize,
        c: &mut [S],
        ldc: usize,
    ) {
        macro_rules! call {
            (dyn, dyn, $($x:tt)*) => {
                ukr_bd_dyn(self.mr, self.nr, kc, alpha, a, a_stride, b, ldb, c, ldc)
            };
            ($mr:literal, $nr:literal, $($x:tt)*) => {
                ukr_bd::<S, $mr, $nr>(kc, alpha, a, a_stride, b, ldb, c, ldc)
            };
        }
        dispatch_shapes!(self, call,)
    }

    /// [`DirectKernel::run_bp`] against a raw `C` tile pointer (the
    /// in-place split-tile path).
    ///
    /// # Safety
    /// `c` must be valid for exclusive reads and writes of the elements
    /// `c + j*ldc + i` for `i < self.mr()`, `j < self.nr()`.
    // SAFETY: an `unsafe fn` declaration — callers discharge the
    // tile-footprint contract in `# Safety` above.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn run_bp_ptr<S: Scalar>(
        &self,
        kc: usize,
        alpha: S,
        a: &[S],
        a_stride: usize,
        b: &[S],
        c: *mut S,
        ldc: usize,
    ) {
        macro_rules! call {
            (dyn, dyn, $($x:tt)*) => {
                // SAFETY: forwarding the caller's tile-footprint contract.
                unsafe { ukr_bp_dyn_ptr(self.mr, self.nr, kc, alpha, a, a_stride, b, c, ldc) }
            };
            ($mr:literal, $nr:literal, $($x:tt)*) => {
                // SAFETY: forwarding the caller's tile-footprint contract.
                unsafe { ukr_bp_ptr::<S, $mr, $nr>(kc, alpha, a, a_stride, b, c, ldc) }
            };
        }
        dispatch_shapes!(self, call,)
    }

    /// [`DirectKernel::run_bd`] against a raw `C` tile pointer (the
    /// in-place split-tile path).
    ///
    /// # Safety
    /// `c` must be valid for exclusive reads and writes of the elements
    /// `c + j*ldc + i` for `i < self.mr()`, `j < self.nr()`.
    // SAFETY: an `unsafe fn` declaration — callers discharge the
    // tile-footprint contract in `# Safety` above.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn run_bd_ptr<S: Scalar>(
        &self,
        kc: usize,
        alpha: S,
        a: &[S],
        a_stride: usize,
        b: &[S],
        ldb: usize,
        c: *mut S,
        ldc: usize,
    ) {
        macro_rules! call {
            (dyn, dyn, $($x:tt)*) => {
                // SAFETY: forwarding the caller's tile-footprint contract.
                unsafe { ukr_bd_dyn_ptr(self.mr, self.nr, kc, alpha, a, a_stride, b, ldb, c, ldc) }
            };
            ($mr:literal, $nr:literal, $($x:tt)*) => {
                // SAFETY: forwarding the caller's tile-footprint contract.
                unsafe { ukr_bd_ptr::<S, $mr, $nr>(kc, alpha, a, a_stride, b, ldb, c, ldc) }
            };
        }
        dispatch_shapes!(self, call,)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn reference(
        mr: usize,
        nr: usize,
        kc: usize,
        alpha: f32,
        a: &dyn Fn(usize, usize) -> f32,
        b: &dyn Fn(usize, usize) -> f32,
        c: &mut [f32],
        ldc: usize,
    ) {
        for j in 0..nr {
            for i in 0..mr {
                let mut s = 0.0;
                for p in 0..kc {
                    s += a(i, p) * b(p, j);
                }
                c[j * ldc + i] += alpha * s;
            }
        }
    }

    fn check(mr: usize, nr: usize, kc: usize) {
        let lda = mr + 5;
        let ldb = kc + 3;
        let ldc = mr + 2;
        let a: Vec<f32> = (0..lda * kc).map(|i| ((i % 13) as f32) - 6.0).collect();
        let b: Vec<f32> = (0..ldb * nr).map(|i| ((i % 7) as f32) * 0.5).collect();
        let bp: Vec<f32> = {
            // pack b: bp[p*nr + j] = b[j*ldb + p]
            let mut v = vec![0.0; kc * nr];
            for p in 0..kc {
                for j in 0..nr {
                    v[p * nr + j] = b[j * ldb + p];
                }
            }
            v
        };
        let af = |i: usize, p: usize| a[p * lda + i];
        let bf = |p: usize, j: usize| b[j * ldb + p];

        let k = DirectKernel::new(mr, nr);
        let mut c1 = vec![1.0f32; ldc * nr];
        let mut c2 = vec![1.0f32; ldc * nr];
        let mut c_ref = vec![1.0f32; ldc * nr];
        k.run_bp(kc, 2.0, &a, lda, &bp, &mut c1, ldc);
        k.run_bd(kc, 2.0, &a, lda, &b, ldb, &mut c2, ldc);
        reference(mr, nr, kc, 2.0, &af, &bf, &mut c_ref, ldc);
        for i in 0..ldc * nr {
            assert!((c1[i] - c_ref[i]).abs() < 1e-3, "bp {mr}x{nr} at {i}");
            assert!((c2[i] - c_ref[i]).abs() < 1e-3, "bd {mr}x{nr} at {i}");
        }
    }

    #[test]
    fn static_shapes_match_reference() {
        for &(mr, nr) in &[
            (16, 4),
            (8, 8),
            (8, 12),
            (12, 4),
            (4, 4),
            (1, 4),
            (4, 1),
            (2, 2),
        ] {
            check(mr, nr, 9);
        }
    }

    #[test]
    fn dynamic_shapes_match_reference() {
        check(7, 5, 11);
        check(3, 13, 4);
        check(16, 16, 3);
    }

    #[test]
    fn packed_stride_equals_packed_kernel() {
        // a_stride = MR reproduces the packed contract of smm-kernels.
        let kc = 8;
        let a: Vec<f32> = (0..4 * kc).map(|i| i as f32 * 0.25).collect();
        let bp: Vec<f32> = (0..4 * kc).map(|i| (i % 5) as f32).collect();
        let mut c1 = vec![0.0f32; 16];
        let mut c2 = vec![0.0f32; 16];
        DirectKernel::new(4, 4).run_bp(kc, 1.0, &a, 4, &bp, &mut c1, 4);
        smm_kernels::Kernel::<f32>::for_shape(4, 4).run(kc, 1.0, &a, &bp, &mut c2, 4);
        assert_eq!(c1, c2);
    }

    #[test]
    fn kc_zero_is_identity() {
        let k = DirectKernel::new(4, 4);
        let mut c = vec![3.0f32; 16];
        k.run_bp(0, 1.0, &[], 4, &[], &mut c, 4);
        assert!(c.iter().all(|&x| x == 3.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_tile_rejected() {
        DirectKernel::new(33, 4);
    }

    /// Shapes between the old 16-row cap and the SVE-512 32-row cap
    /// run through the dynamic kernel.
    #[test]
    fn wide_isa_tile_shapes_admitted() {
        let k = DirectKernel::new(32, 12);
        assert_eq!((k.mr(), k.nr()), (32, 12));
        let (mr, nr, kc) = (32, 3, 5);
        let a: Vec<f32> = (0..mr * kc).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..nr * kc).map(|i| (i % 5) as f32 - 2.0).collect();
        let mut c = vec![0.0f32; mr * nr];
        DirectKernel::new(mr, nr).run_bp(kc, 1.0, &a, mr, &b, &mut c, mr);
        for j in 0..nr {
            for i in 0..mr {
                let want: f32 = (0..kc).map(|p| a[p * mr + i] * b[p * nr + j]).sum();
                assert_eq!(c[j * mr + i], want, "c[{i},{j}]");
            }
        }
    }
}
