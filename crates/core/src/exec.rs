//! Native execution of an [`SmmPlan`].
//!
//! Single-threaded execution writes micro-tiles straight into `C`
//! (tiles are exact, never padded). Multi-threaded execution splits the
//! plan's tile lists across the thread grid's `m_ways × n_ways`; each
//! grid cell receives a disjoint tile of `C` from
//! [`MatMut::split_grid`] and updates it **in place** — no private
//! block, no post-join merge pass, `C` is swept once. Packing buffers
//! come from the thread-local [`smm_gemm::arena`], so a warmed-up
//! steady state allocates nothing per call.
//!
//! Multi-threaded plans run on a persistent [`TaskPool`] instead of
//! spawning threads per call — thread startup is the §III-D overhead
//! that makes naive parallel SMM slower than sequential. The cell
//! decomposition is identical to the historical spawn-per-call
//! executor, so results are bit-for-bit unchanged (see
//! `pooled_execution_is_bit_identical_to_spawn_per_call`).

use smm_gemm::arena;
use smm_gemm::matrix::{MatMut, MatRef};
use smm_gemm::naive::check_dims_of;
use smm_gemm::pack::{pack_a_exact, pack_b_exact_append};
use smm_gemm::parallel::split_ranges;
use smm_gemm::pool::TaskPool;
use smm_kernels::registry::TileSpan;
use smm_kernels::Scalar;

use crate::direct::DirectKernel;
use crate::plan::SmmPlan;
use crate::telemetry::{now_if, Phase, Recorder};
use crate::trace::{SpanName, Tracer};

/// Execute `C = alpha·A·B + beta·C` under a plan, on the process-wide
/// persistent pool ([`TaskPool::global`]).
pub fn execute<S: Scalar>(
    plan: &SmmPlan,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
) {
    execute_in(TaskPool::global(), plan, alpha, a, b, beta, c);
}

/// [`execute`] on an explicit pool handle.
pub fn execute_in<S: Scalar>(
    pool: &TaskPool,
    plan: &SmmPlan,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
) {
    execute_traced(pool, plan, Recorder::none(), alpha, a, b, beta, c);
}

/// [`execute_in`] with a telemetry [`Recorder`]: when the recorder is
/// active, this call's pack/compute spans (and, for multi-threaded
/// plans, the dispatch and synchronization spans) are recorded under
/// the recorder's call site. With an inactive recorder the function
/// never reads the clock, so the untraced path is unchanged.
#[allow(clippy::too_many_arguments)]
pub fn execute_traced<S: Scalar>(
    pool: &TaskPool,
    plan: &SmmPlan,
    rec: Recorder<'_>,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
) {
    execute_traced_ctx(pool, plan, rec, &Tracer::disabled(), alpha, a, b, beta, c);
}

/// [`execute_traced`] under a request [`Tracer`]: when tracing is
/// enabled, each pool-worker cell task emits a `worker` span parented
/// under the caller's current span (captured as a [`crate::TraceCtx`]
/// before dispatch, since the cells run on pool threads). The cell
/// decomposition and execution order are untouched — results stay
/// bit-for-bit identical to the untraced path.
#[allow(clippy::too_many_arguments)]
pub fn execute_traced_ctx<S: Scalar>(
    pool: &TaskPool,
    plan: &SmmPlan,
    rec: Recorder<'_>,
    tracer: &Tracer,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    mut c: MatMut<'_, S>,
) {
    let (m, k, n) = check_dims_of(&a, &b, c.rows(), c.cols());
    assert_eq!(
        (m, n, k),
        (plan.m, plan.n, plan.k),
        "plan was built for {}x{}x{}",
        plan.m,
        plan.n,
        plan.k
    );
    let timed = rec.active();
    let threads = plan.threads();
    if threads <= 1 {
        c.scale(beta);
        let t0 = rec.now();
        let cost = run_tiles(
            plan,
            timed,
            alpha,
            a,
            b,
            &mut c,
            &plan.m_tiles,
            &plan.n_tiles,
            0,
            0,
        );
        if let Some(t0) = t0 {
            record_cost(&rec, &cost, t0.elapsed().as_nanos() as u64);
        }
        return;
    }

    // The beta scaling is the serial bookend of the parallel section —
    // it counts as Sync in the Table-II sense, together with the
    // caller's wait beyond the slowest task. (The historical post-join
    // merge pass — the other bookend — no longer exists: each cell
    // writes its disjoint C tile in place.)
    let t_scale = rec.now();
    c.scale(beta);
    let scale_ns = t_scale.map_or(0, |t| t.elapsed().as_nanos() as u64);

    // Non-empty grid cells. Plan tiles cover each dimension
    // contiguously, so chunk row/col spans partition C exactly.
    let m_chunks = split_ranges(plan.m_tiles.len(), plan.grid.m_ways());
    let n_chunks = split_ranges(plan.n_tiles.len(), plan.grid.n_ways());
    let row_bands: Vec<(usize, usize, &[TileSpan])> = m_chunks
        .iter()
        .filter(|&&(_, mc)| mc > 0)
        .map(|&(ms, mc)| {
            let tiles = &plan.m_tiles[ms..ms + mc];
            let rows: usize = tiles.iter().map(|t| t.logical).sum();
            (tiles[0].offset, rows, tiles)
        })
        .collect();
    let col_bands: Vec<(usize, usize, &[TileSpan])> = n_chunks
        .iter()
        .filter(|&&(_, nc)| nc > 0)
        .map(|&(ns, nc)| {
            let tiles = &plan.n_tiles[ns..ns + nc];
            let cols: usize = tiles.iter().map(|t| t.logical).sum();
            (tiles[0].offset, cols, tiles)
        })
        .collect();
    let row_splits: Vec<(usize, usize)> = row_bands.iter().map(|&(i0, r, _)| (i0, r)).collect();
    let col_splits: Vec<(usize, usize)> = col_bands.iter().map(|&(j0, cl, _)| (j0, cl)).collect();
    // split_grid yields row band outer, column band inner — the same
    // order the nested loops below consume.
    let mut tiles_iter = c.split_grid(&row_splits, &col_splits).into_iter();

    // Parentage for the worker spans, captured on this thread: the
    // cells run on pool threads where the thread-local current span is
    // someone else's (or nobody's).
    let ctx = tracer.current_ctx();
    let mut tasks: Vec<_> = Vec::with_capacity(row_bands.len() * col_bands.len());
    let mut cell = 0u64;
    for &(i_base, _, m_tiles) in &row_bands {
        for &(j_base, _, n_tiles) in &col_bands {
            let (ti, tj, mut tile) = tiles_iter.next().expect("one tile per band pair");
            debug_assert_eq!((ti, tj), (i_base, j_base));
            let cell_idx = cell;
            cell += 1;
            tasks.push(move || {
                let _w = tracer.span_in(ctx, SpanName::Worker, cell_idx);
                let t0 = now_if(timed);
                let cost = run_tiles(
                    plan, timed, alpha, a, b, &mut tile, m_tiles, n_tiles, i_base, j_base,
                );
                let busy_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                (cost, busy_ns)
            });
        }
    }
    let t_dispatch = rec.now();
    let results = pool.run_scoped(tasks);
    let dispatch_ns = t_dispatch.map_or(0, |t| t.elapsed().as_nanos() as u64);
    if timed {
        let mut max_busy = 0u64;
        for (cost, busy_ns) in results {
            record_cost(&rec, &cost, busy_ns);
            max_busy = max_busy.max(busy_ns);
        }
        rec.span_ns(Phase::Dispatch, dispatch_ns);
        // Barrier slack (the caller's wait beyond the slowest cell)
        // plus the serial scale bookend; no merge term remains.
        rec.span_ns(Phase::Sync, dispatch_ns.saturating_sub(max_busy) + scale_ns);
    }
}

/// Packing cost observed by one [`run_tiles`] invocation; all zeros
/// when untimed.
#[derive(Debug, Clone, Copy, Default)]
struct PackCost {
    a_ns: u64,
    b_ns: u64,
    bytes: u64,
    a_packed: bool,
    b_packed: bool,
}

/// Record one tile-run's spans: pack phases as measured, compute as
/// the remainder of the run's wall time.
fn record_cost(rec: &Recorder<'_>, cost: &PackCost, total_ns: u64) {
    if cost.a_packed {
        rec.span_ns(Phase::PackA, cost.a_ns);
    }
    if cost.b_packed {
        rec.span_ns(Phase::PackB, cost.b_ns);
    }
    if cost.bytes > 0 {
        rec.packed_bytes(cost.bytes);
    }
    rec.span_ns(
        Phase::Compute,
        total_ns.saturating_sub(cost.a_ns + cost.b_ns),
    );
}

/// Run a set of tiles; tile offsets are global, `i_base`/`j_base`
/// translate them into the target `C` view.
///
/// With `timed` set, each packing call is individually clocked and the
/// accumulated cost returned; packing is coarse enough (one call per
/// panel per k-block, never per micro-kernel) that the extra clock
/// reads stay amortized. Untimed runs return a zero [`PackCost`] and
/// never read the clock.
#[allow(clippy::too_many_arguments)]
fn run_tiles<S: Scalar>(
    plan: &SmmPlan,
    timed: bool,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    c: &mut MatMut<'_, S>,
    m_tiles: &[TileSpan],
    n_tiles: &[TileSpan],
    i_base: usize,
    j_base: usize,
) -> PackCost {
    let lda = a.ld();
    let ldb = b.ld();
    let ldc = c.ld();
    let nr = plan.kernel.nr;
    let elem = std::mem::size_of::<S>() as u64;
    let mut cost = PackCost::default();

    // Arena-backed working storage: one buffer holds every packed B
    // sliver of a k block (offsets below), one the current A panel.
    // After warm-up these checkouts allocate nothing.
    let kc_max = plan.kc.min(plan.k);
    let n_total: usize = n_tiles.iter().map(|t| t.logical).sum();
    let m_max: usize = m_tiles.iter().map(|t| t.logical).max().unwrap_or(0);
    let mut bpack = arena::checkout::<S>(kc_max * n_total);
    let mut apack = arena::checkout::<S>(kc_max * m_max);
    // Per-sliver start offsets into `bpack`; UNPACKED marks slivers
    // streamed straight from B.
    const UNPACKED: usize = usize::MAX;
    let mut b_offs = arena::checkout::<usize>(n_tiles.len());

    let mut kk = 0;
    while kk < plan.k {
        let kc = plan.kc.min(plan.k - kk);
        // Decide and perform B packing for this k block.
        bpack.clear();
        b_offs.clear();
        for jt in n_tiles.iter() {
            let edge = jt.logical < nr;
            if plan.pack_b || (edge && plan.pack_edge_b) {
                let t0 = now_if(timed);
                let off = pack_b_exact_append(b, kk, jt.offset, kc, jt.logical, &mut bpack);
                if let Some(t0) = t0 {
                    cost.b_ns += t0.elapsed().as_nanos() as u64;
                    cost.bytes += (kc * jt.logical) as u64 * elem;
                    cost.b_packed = true;
                }
                b_offs.push(off);
            } else {
                b_offs.push(UNPACKED);
            }
        }
        for it in m_tiles {
            // A source: packed panel or the raw column-major block.
            let (a_src, a_stride): (&[S], usize) = if plan.pack_a {
                let t0 = now_if(timed);
                pack_a_exact(a, it.offset, kk, it.logical, kc, &mut apack);
                if let Some(t0) = t0 {
                    cost.a_ns += t0.elapsed().as_nanos() as u64;
                    cost.bytes += (it.logical * kc) as u64 * elem;
                    cost.a_packed = true;
                }
                (apack.as_slice(), it.logical)
            } else {
                (&a.data()[kk * lda + it.offset..], lda)
            };
            for (s, jt) in n_tiles.iter().enumerate() {
                let kernel = DirectKernel::new(it.logical, jt.logical);
                let cptr = c.tile_ptr(
                    it.offset - i_base,
                    jt.offset - j_base,
                    it.logical,
                    jt.logical,
                );
                if b_offs[s] != UNPACKED {
                    let b_sl = &bpack[b_offs[s]..b_offs[s] + kc * jt.logical];
                    // SAFETY: `tile_ptr` just asserted the tile's
                    // `logical x logical` window lies inside `c`, whose
                    // elements `&mut c` owns exclusively; the kernel
                    // writes exactly that footprint with stride
                    // `ldc = c.ld()`.
                    unsafe { kernel.run_bp_ptr(kc, alpha, a_src, a_stride, b_sl, cptr, ldc) };
                } else {
                    let b_src = &b.data()[jt.offset * ldb + kk..];
                    // SAFETY: as above — the asserted window is owned
                    // exclusively through `&mut c` and the kernel stays
                    // inside it.
                    unsafe { kernel.run_bd_ptr(kc, alpha, a_src, a_stride, b_src, ldb, cptr, ldc) };
                }
            }
        }
        kk += kc;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanConfig;
    use smm_gemm::gemm_naive;
    use smm_gemm::matrix::Mat;

    fn check(m: usize, n: usize, k: usize, cfg: &PlanConfig, alpha: f32, beta: f32) {
        let plan = SmmPlan::build(m, n, k, cfg);
        let a = Mat::<f32>::random(m, k, 21);
        let b = Mat::<f32>::random(k, n, 22);
        let mut c = Mat::<f32>::random(m, n, 23);
        let mut c_ref = c.clone();
        execute(&plan, alpha, a.as_ref(), b.as_ref(), beta, c.as_mut());
        gemm_naive(alpha, a.as_ref(), b.as_ref(), beta, c_ref.as_mut());
        let d = c.max_abs_diff(&c_ref);
        assert!(d < 1e-3, "{m}x{n}x{k} cfg {cfg:?}: diff {d}");
    }

    #[test]
    fn default_plan_matches_naive() {
        let cfg = PlanConfig::default();
        check(8, 8, 8, &cfg, 1.0, 0.0);
        check(64, 64, 64, &cfg, 1.0, 1.0);
        check(75, 60, 60, &cfg, 2.0, 0.5);
        check(5, 200, 30, &cfg, 1.0, 0.0);
        check(200, 5, 30, &cfg, 1.0, 0.0);
        check(30, 30, 2, &cfg, -1.0, 1.0);
        check(1, 1, 1, &cfg, 1.0, 3.0);
    }

    #[test]
    fn all_packing_combinations_are_correct() {
        for pa in [Some(false), Some(true)] {
            for pb in [Some(false), Some(true)] {
                let cfg = PlanConfig {
                    pack_a: pa,
                    pack_b: pb,
                    ..Default::default()
                };
                check(33, 27, 19, &cfg, 1.5, 0.25);
                check(13, 3, 41, &cfg, 1.0, 0.0);
            }
        }
    }

    #[test]
    fn edge_packing_toggle_is_correct() {
        for peb in [false, true] {
            let cfg = PlanConfig {
                pack_b: Some(false),
                pack_edge_b: peb,
                ..Default::default()
            };
            check(16, 13, 8, &cfg, 1.0, 0.0);
        }
    }

    #[test]
    fn multithreaded_plans_match_naive() {
        for threads in [2, 4, 8] {
            let cfg = PlanConfig {
                max_threads: threads,
                ..Default::default()
            };
            check(48, 96, 24, &cfg, 1.0, 1.0);
            check(96, 16, 32, &cfg, 2.0, 0.0);
        }
    }

    #[test]
    fn multithreaded_tiny_problem_degrades_gracefully() {
        let cfg = PlanConfig {
            max_threads: 64,
            ..Default::default()
        };
        check(4, 4, 4, &cfg, 1.0, 0.0);
        check(2, 50, 10, &cfg, 1.0, 1.0);
    }

    #[test]
    fn k_blocking_boundaries_are_exact() {
        // Force multiple kc blocks.
        let cfg = PlanConfig::default();
        let plan = SmmPlan::build(16, 16, 2100, &cfg);
        assert!(plan.kc < 2100);
        check(16, 16, 2100, &cfg, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "plan was built for")]
    fn mismatched_shape_rejected() {
        let plan = SmmPlan::build(8, 8, 8, &PlanConfig::default());
        let a = Mat::<f32>::zeros(9, 8);
        let b = Mat::<f32>::zeros(8, 8);
        let mut c = Mat::<f32>::zeros(9, 8);
        execute(&plan, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    }

    #[test]
    fn explicit_pool_matches_global_pool() {
        let pool = TaskPool::new(3);
        let cfg = PlanConfig {
            max_threads: 4,
            ..Default::default()
        };
        let plan = SmmPlan::build(48, 40, 24, &cfg);
        let a = Mat::<f32>::random(48, 24, 31);
        let b = Mat::<f32>::random(24, 40, 32);
        let mut c1 = Mat::<f32>::random(48, 40, 33);
        let mut c2 = c1.clone();
        execute(&plan, 1.25, a.as_ref(), b.as_ref(), 0.5, c1.as_mut());
        execute_in(&pool, &plan, 1.25, a.as_ref(), b.as_ref(), 0.5, c2.as_mut());
        assert_eq!(c1.data(), c2.data());
    }

    /// The historical executor this PR replaced: one `thread::scope`
    /// spawn per grid cell, joined in submission order. Kept verbatim
    /// as the oracle for the bit-for-bit parity guarantee.
    fn execute_spawn_per_call<S: Scalar>(
        plan: &SmmPlan,
        alpha: S,
        a: MatRef<'_, S>,
        b: MatRef<'_, S>,
        beta: S,
        mut c: MatMut<'_, S>,
    ) {
        let (m, k, n) = check_dims_of(&a, &b, c.rows(), c.cols());
        assert_eq!((m, n, k), (plan.m, plan.n, plan.k));
        c.scale(beta);
        if plan.threads() <= 1 {
            run_tiles(
                plan,
                false,
                alpha,
                a,
                b,
                &mut c,
                &plan.m_tiles,
                &plan.n_tiles,
                0,
                0,
            );
            return;
        }
        let m_chunks = split_ranges(plan.m_tiles.len(), plan.grid.m_ways());
        let n_chunks = split_ranges(plan.n_tiles.len(), plan.grid.n_ways());
        let mut cells: Vec<(usize, usize, usize, usize, Mat<S>)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &(ms, mc) in &m_chunks {
                for &(ns, nc) in &n_chunks {
                    if mc == 0 || nc == 0 {
                        continue;
                    }
                    let m_tiles = &plan.m_tiles[ms..ms + mc];
                    let n_tiles = &plan.n_tiles[ns..ns + nc];
                    let i_base = m_tiles[0].offset;
                    let j_base = n_tiles[0].offset;
                    let rows: usize = m_tiles.iter().map(|t| t.logical).sum();
                    let cols: usize = n_tiles.iter().map(|t| t.logical).sum();
                    handles.push(scope.spawn(move || {
                        let mut local = Mat::<S>::zeros(rows, cols);
                        {
                            let mut lm = local.as_mut();
                            run_tiles(
                                plan, false, alpha, a, b, &mut lm, m_tiles, n_tiles, i_base, j_base,
                            );
                        }
                        (i_base, j_base, rows, cols, local)
                    }));
                }
            }
            for h in handles {
                cells.push(h.join().expect("SMM worker panicked"));
            }
        });
        for (i_base, j_base, rows, cols, local) in cells {
            for j in 0..cols {
                for i in 0..rows {
                    let v = c.at(i_base + i, j_base + j) + local[(i, j)];
                    c.set(i_base + i, j_base + j, v);
                }
            }
        }
    }

    #[test]
    fn pooled_execution_is_bit_identical_to_spawn_per_call() {
        for &(m, n, k, threads) in &[
            (48usize, 96usize, 24usize, 4usize),
            (96, 16, 32, 8),
            (33, 27, 19, 2),
            (64, 64, 64, 16),
        ] {
            let cfg = PlanConfig {
                max_threads: threads,
                ..Default::default()
            };
            let plan = SmmPlan::build(m, n, k, &cfg);
            let a = Mat::<f32>::random(m, k, 41);
            let b = Mat::<f32>::random(k, n, 42);
            let mut c_pool = Mat::<f32>::random(m, n, 43);
            let mut c_spawn = c_pool.clone();
            execute(&plan, 1.5, a.as_ref(), b.as_ref(), 0.25, c_pool.as_mut());
            execute_spawn_per_call(&plan, 1.5, a.as_ref(), b.as_ref(), 0.25, c_spawn.as_mut());
            for (x, y) in c_pool.data().iter().zip(c_spawn.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{n}x{k} t{threads}");
            }
        }
    }
}
