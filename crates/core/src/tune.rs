//! Simulator-driven auto-tuning.
//!
//! §IV's "adaptive code generation" recommends picking the kernel
//! combination per input shape. The heuristic planner ([`crate::plan`])
//! does this with closed-form models; the [`Autotuner`] goes further,
//! the way LIBXSMM's JIT measures what it generates: it *simulates*
//! each candidate plan on the Phytium 2000+ model and keeps the one
//! with the fewest cycles. Tuning costs milliseconds per shape and is
//! cached, which matches the SMM usage pattern (few distinct shapes,
//! many invocations).

use std::collections::HashMap;
use std::sync::Mutex;

use smm_model::KernelShape;

use crate::plan::{PlanConfig, SmmPlan, KERNEL_CANDIDATES};
use crate::simprog::build_sim;

/// Outcome of tuning one shape.
#[derive(Debug, Clone)]
pub struct TunedPlan {
    /// The winning plan.
    pub plan: SmmPlan,
    /// Simulated cycles of the winner.
    pub cycles: u64,
    /// Simulated cycles of the heuristic (model-driven) plan, for
    /// reporting the tuning gain.
    pub heuristic_cycles: u64,
    /// Number of candidate plans simulated.
    pub candidates: usize,
}

impl TunedPlan {
    /// Speedup of the tuned plan over the heuristic plan.
    pub fn gain(&self) -> f64 {
        self.heuristic_cycles as f64 / self.cycles as f64
    }
}

/// Exhaustive-ish candidate search with caching.
pub struct Autotuner {
    base: PlanConfig,
    cache: Mutex<HashMap<(usize, usize, usize), TunedPlan>>,
}

impl Autotuner {
    /// Tuner deriving candidates from a base configuration (thread
    /// budget etc. are taken from `base`).
    pub fn new(base: PlanConfig) -> Self {
        Autotuner {
            base,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Candidate configurations for a shape: every feasible kernel from
    /// the planner's candidate set crossed with the packing choices.
    fn candidates(&self) -> Vec<PlanConfig> {
        let mut out = Vec::new();
        for &(mr, nr) in KERNEL_CANDIDATES {
            for pack_b in [Some(false), Some(true)] {
                for pack_a in [Some(false), Some(true)] {
                    out.push(PlanConfig {
                        kernel: Some(KernelShape::new(mr, nr)),
                        pack_a,
                        pack_b,
                        ..self.base.clone()
                    });
                }
            }
        }
        out
    }

    /// Tune a shape (cached).
    pub fn tune(&self, m: usize, n: usize, k: usize) -> TunedPlan {
        if let Some(hit) = self.cache.lock().unwrap().get(&(m, n, k)) {
            return hit.clone();
        }
        let heuristic = SmmPlan::build(m, n, k, &self.base);
        let heuristic_cycles = build_sim(&heuristic).run().cycles;

        let mut best_plan = heuristic;
        let mut best_cycles = heuristic_cycles;
        let candidates = self.candidates();
        let n_candidates = candidates.len();
        for cfg in candidates {
            let plan = SmmPlan::build(m, n, k, &cfg);
            let cycles = build_sim(&plan).run().cycles;
            if cycles < best_cycles {
                best_cycles = cycles;
                best_plan = plan;
            }
        }
        let tuned = TunedPlan {
            plan: best_plan,
            cycles: best_cycles,
            heuristic_cycles,
            candidates: n_candidates + 1,
        };
        self.cache.lock().unwrap().insert((m, n, k), tuned.clone());
        tuned
    }

    /// Shapes tuned so far.
    pub fn cached(&self) -> usize {
        self.cache.lock().unwrap().len()
    }
}

impl Default for Autotuner {
    fn default() -> Self {
        Self::new(PlanConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_never_loses_to_heuristic() {
        let tuner = Autotuner::default();
        for &(m, n, k) in &[(8usize, 8usize, 8usize), (13, 7, 21), (40, 40, 40)] {
            let t = tuner.tune(m, n, k);
            assert!(t.cycles <= t.heuristic_cycles, "{m}x{n}x{k}: {t:?}");
            assert!(t.gain() >= 1.0);
            assert!(t.candidates > KERNEL_CANDIDATES.len());
        }
    }

    #[test]
    fn tuning_is_cached() {
        let tuner = Autotuner::default();
        let a = tuner.tune(6, 6, 6);
        let b = tuner.tune(6, 6, 6);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(tuner.cached(), 1);
    }

    #[test]
    fn tuned_plan_executes_correctly() {
        use smm_gemm::gemm_naive;
        use smm_gemm::matrix::Mat;
        let tuner = Autotuner::default();
        let t = tuner.tune(15, 11, 9);
        let a = Mat::<f32>::random(15, 9, 1);
        let b = Mat::<f32>::random(9, 11, 2);
        let mut c = Mat::<f32>::zeros(15, 11);
        let mut c_ref = c.clone();
        crate::exec::execute(&t.plan, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn tuner_respects_thread_budget() {
        let tuner = Autotuner::new(PlanConfig {
            max_threads: 8,
            ..Default::default()
        });
        let t = tuner.tune(64, 96, 32);
        assert!(t.plan.threads() <= 8);
    }
}
