//! Simulator-driven auto-tuning: the online stage and the persistent
//! two-stage scheme.
//!
//! §IV's "adaptive code generation" recommends picking the kernel
//! combination per input shape. The heuristic planner ([`crate::plan`])
//! does this with closed-form models; [`tune_shape`] goes further, the
//! way LIBXSMM's JIT measures what it generates: it *simulates* each
//! candidate plan on the Phytium 2000+ model and keeps the one with the
//! fewest cycles. Tuning costs milliseconds per shape, which matches
//! the SMM usage pattern (few distinct shapes, many invocations) —
//! [`Autotuner`] caches it per process.
//!
//! Per-process caching still pays the full tuning cost once per shape
//! per restart. [`PlanSource`] adds IAAT's persistent two-stage scheme
//! on top: an offline sweep (the `smm-tune` binary) writes a
//! [`PlanDb`]; at runtime, a lookup first tries an exact database hit,
//! then nearest-neighbor matching in log-space shape distance, and only
//! pays for full online tuning when both miss — recording the result as
//! a delta so the *next* process never tunes that shape again.

use std::collections::HashMap;
use std::path::PathBuf;

use smm_sync::sync::atomic::{AtomicU64, Ordering};
use smm_sync::sync::RwLock;

use smm_model::KernelShape;
use smm_tune::{DeltaBuffer, PlanDb, PlanDbError, PlanEntry, DEFAULT_NN_THRESHOLD};

use crate::plan::{PlanConfig, SmmPlan, KERNEL_CANDIDATES};
use crate::simprog::build_sim;

/// Outcome of tuning one shape.
#[derive(Debug, Clone)]
pub struct TunedPlan {
    /// The winning plan.
    pub plan: SmmPlan,
    /// Simulated cycles of the winner.
    pub cycles: u64,
    /// Simulated cycles of the heuristic (model-driven) plan, for
    /// reporting the tuning gain.
    pub heuristic_cycles: u64,
    /// Number of candidate plans simulated.
    pub candidates: usize,
}

impl TunedPlan {
    /// Speedup of the tuned plan over the heuristic plan.
    pub fn gain(&self) -> f64 {
        self.heuristic_cycles as f64 / self.cycles as f64
    }

    /// This tuning outcome as a persistable database entry for
    /// `elem_bytes`-sized elements.
    pub fn to_entry(&self, elem_bytes: u16, refined: bool) -> PlanEntry {
        PlanEntry {
            m: self.plan.m as u32,
            n: self.plan.n as u32,
            k: self.plan.k as u32,
            mr: self.plan.kernel.mr as u16,
            nr: self.plan.kernel.nr as u16,
            pack_a: self.plan.pack_a,
            pack_b: self.plan.pack_b,
            refined,
            elem_bytes,
            cycles: self.cycles,
            heuristic_cycles: self.heuristic_cycles,
            traffic: 0,
        }
    }
}

/// Candidate configurations for tuning: every kernel from the planner's
/// candidate set crossed with the packing choices, derived from `base`
/// (thread budget, ISA etc. are taken from it).
pub fn candidate_configs(base: &PlanConfig) -> Vec<PlanConfig> {
    let mut out = Vec::new();
    for &(mr, nr) in KERNEL_CANDIDATES {
        for pack_b in [Some(false), Some(true)] {
            for pack_a in [Some(false), Some(true)] {
                out.push(PlanConfig {
                    kernel: Some(KernelShape::new(mr, nr)),
                    pack_a,
                    pack_b,
                    ..base.clone()
                });
            }
        }
    }
    out
}

/// Fully tune one shape (uncached): simulate the heuristic plan and
/// every candidate, keep the cheapest. This is the single online-tuning
/// primitive — the [`Autotuner`] caches it per process, the `smm-tune`
/// sweep binary runs it over a grid, and [`PlanSource`] falls back to
/// it when the database and nearest-neighbor stages both miss.
pub fn tune_shape(m: usize, n: usize, k: usize, base: &PlanConfig) -> TunedPlan {
    let heuristic = SmmPlan::build(m, n, k, base);
    let heuristic_cycles = build_sim(&heuristic).run().cycles;

    let mut best_plan = heuristic;
    let mut best_cycles = heuristic_cycles;
    let candidates = candidate_configs(base);
    let n_candidates = candidates.len();
    for cfg in candidates {
        let plan = SmmPlan::build(m, n, k, &cfg);
        let cycles = build_sim(&plan).run().cycles;
        if cycles < best_cycles {
            best_cycles = cycles;
            best_plan = plan;
        }
    }
    TunedPlan {
        plan: best_plan,
        cycles: best_cycles,
        heuristic_cycles,
        candidates: n_candidates + 1,
    }
}

/// Number of independently locked cache shards (power of two, same
/// scheme as the runtime's `ShardedPlanCache`): tuning a shape takes
/// milliseconds, so a single `Mutex` would serialize every *cached*
/// lookup behind any in-flight tuning of an unrelated shape.
const SHARDS: usize = 16;

fn shard_of(key: (usize, usize, usize)) -> usize {
    // Fibonacci-hash the shape so near-identical shapes (the common
    // case in sweeps) spread across shards.
    let h = key
        .0
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(key.1.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(key.2.wrapping_mul(0x1656_67B1_9E37_79F9));
    (h >> 48) & (SHARDS - 1)
}

type Shard = RwLock<HashMap<(usize, usize, usize), TunedPlan>>;

/// Exhaustive-ish candidate search with sharded-lock caching: cached
/// lookups take a shared lock on one shard only, candidate simulation
/// happens outside any lock, and the insert double-checks so
/// concurrent tunings of one shape converge on a single entry.
pub struct Autotuner {
    base: PlanConfig,
    shards: [Shard; SHARDS],
}

impl Autotuner {
    /// Tuner deriving candidates from a base configuration (thread
    /// budget etc. are taken from `base`).
    pub fn new(base: PlanConfig) -> Self {
        Autotuner {
            base,
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }

    /// Tune a shape (cached).
    pub fn tune(&self, m: usize, n: usize, k: usize) -> TunedPlan {
        let key = (m, n, k);
        let shard = &self.shards[shard_of(key)];
        if let Some(hit) = shard.read().unwrap().get(&key) {
            return hit.clone();
        }
        // Simulate outside any lock: tuning one shape must not block
        // cached lookups of the fifteen unrelated shards, nor even
        // cached lookups of other shapes on this shard.
        let tuned = tune_shape(m, n, k, &self.base);
        let mut map = shard.write().unwrap();
        if let Some(hit) = map.get(&key) {
            // A concurrent tuning won the race; adopt its result so
            // every caller observes one entry per shape.
            return hit.clone();
        }
        map.insert(key, tuned.clone());
        tuned
    }

    /// Shapes tuned so far.
    pub fn cached(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }
}

impl Default for Autotuner {
    fn default() -> Self {
        Self::new(PlanConfig::default())
    }
}

/// Counters of the two-stage plan source, exported through
/// `TelemetryReport` (text/JSON/Prometheus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TunerStats {
    /// Entries resident in the loaded plan database (0 when none).
    pub db_entries: u64,
    /// Plan builds answered by an exact database hit.
    pub db_hits: u64,
    /// Plan builds answered by a nearest-neighbor match within the
    /// threshold.
    pub nn_matches: u64,
    /// Plan builds that fell through to full online tuning (and were
    /// recorded as refinement deltas).
    pub online_refines: u64,
    /// Plan builds with no database at all, or with online refinement
    /// disabled — the plain heuristic path.
    pub untuned_builds: u64,
    /// Refinement deltas recorded but not yet flushed to disk.
    pub pending_deltas: u64,
    /// Refinement deltas written out by flushes so far.
    pub persisted_deltas: u64,
}

impl TunerStats {
    /// Total plan builds that went through the source.
    pub fn lookups(&self) -> u64 {
        self.db_hits + self.nn_matches + self.online_refines + self.untuned_builds
    }

    /// Fraction of lookups the persistent stage answered (exact hit or
    /// nearest-neighbor match) — the cold-start acceptance metric.
    pub fn db_coverage(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            (self.db_hits + self.nn_matches) as f64 / total as f64
        }
    }
}

/// The runtime half of the two-stage scheme: where plans come from when
/// the sharded cache misses.
///
/// Without a database this is exactly the old behavior — build the
/// heuristic plan. With one, a miss walks the IAAT ladder:
///
/// 1. **exact hit** — the shape was swept (or previously refined);
///    build straight from the stored entry, no simulation;
/// 2. **nearest-neighbor match** — an entry within `nn_threshold`
///    log-space distance lends its kernel/packing choice (blocking is
///    re-derived for the actual shape by the planner);
/// 3. **online refinement** — full simulation via [`tune_shape`], with
///    the winner upserted into the in-memory database and recorded as a
///    delta for [`PlanSource::flush`] to persist.
pub struct PlanSource {
    db: Option<RwLock<PlanDb>>,
    db_path: Option<PathBuf>,
    nn_threshold: f64,
    refine_online: bool,
    deltas: DeltaBuffer,
    // relaxed — independent monotonic counters, read only for reporting.
    db_hits: AtomicU64,
    nn_matches: AtomicU64,
    online_refines: AtomicU64,
    untuned_builds: AtomicU64,
    persisted_deltas: AtomicU64,
}

impl PlanSource {
    /// A source with no persistent stage: every miss builds the
    /// heuristic plan, bit-for-bit the pre-database behavior.
    pub fn untuned() -> Self {
        PlanSource {
            db: None,
            db_path: None,
            nn_threshold: DEFAULT_NN_THRESHOLD,
            refine_online: true,
            deltas: DeltaBuffer::new(),
            db_hits: AtomicU64::new(0),
            nn_matches: AtomicU64::new(0),
            online_refines: AtomicU64::new(0),
            untuned_builds: AtomicU64::new(0),
            persisted_deltas: AtomicU64::new(0),
        }
    }

    /// A source backed by `db`; `db_path` is where flushes persist
    /// (None = in-memory only).
    pub fn with_db(db: PlanDb, db_path: Option<PathBuf>) -> Self {
        PlanSource {
            db: Some(RwLock::new(db)),
            db_path,
            ..Self::untuned()
        }
    }

    /// Nearest-neighbor acceptance threshold (log-space distance).
    pub fn set_nn_threshold(&mut self, threshold: f64) {
        self.nn_threshold = threshold.max(0.0);
    }

    /// Whether double misses pay for full online tuning (true) or fall
    /// back to the plain heuristic plan (false).
    pub fn set_refine_online(&mut self, refine: bool) {
        self.refine_online = refine;
    }

    /// ISA the loaded database was swept under, if any.
    pub fn db_isa(&self) -> Option<smm_model::VectorIsa> {
        self.db.as_ref().map(|db| db.read().unwrap().isa())
    }

    /// Whether a persistent database is loaded.
    pub fn has_db(&self) -> bool {
        self.db.is_some()
    }

    /// Build the plan for one shape, walking the two-stage ladder.
    pub fn plan_for(&self, m: usize, n: usize, k: usize, cfg: &PlanConfig) -> SmmPlan {
        let Some(db) = &self.db else {
            // relaxed — monotonic counter, read only for reporting.
            self.untuned_builds.fetch_add(1, Ordering::Relaxed);
            return SmmPlan::build(m, n, k, cfg);
        };
        {
            let db = db.read().unwrap();
            if let Some(entry) = db.get(m, n, k) {
                // relaxed — monotonic counter, read only for reporting.
                self.db_hits.fetch_add(1, Ordering::Relaxed);
                return self.build_from_entry(m, n, k, entry, cfg);
            }
            if let Some((entry, dist)) = db.nearest(m, n, k) {
                if dist <= self.nn_threshold {
                    // relaxed — monotonic counter, read only for reporting.
                    self.nn_matches.fetch_add(1, Ordering::Relaxed);
                    return self.build_from_entry(m, n, k, entry, cfg);
                }
            }
        }
        // Outside the swept envelope. Refine online (full simulation,
        // outside any lock) and remember the answer, or fall back to
        // the heuristic when refinement is disabled.
        if !self.refine_online {
            // relaxed — monotonic counter, read only for reporting.
            self.untuned_builds.fetch_add(1, Ordering::Relaxed);
            return SmmPlan::build(m, n, k, cfg);
        }
        let tuned = tune_shape(m, n, k, cfg);
        let entry = tuned.to_entry(4, true);
        self.deltas.record(entry.clone());
        db.write().unwrap().upsert(entry);
        // relaxed — monotonic counter, read only for reporting.
        self.online_refines.fetch_add(1, Ordering::Relaxed);
        tuned.plan
    }

    /// Build a plan from a stored entry: the entry pins the kernel and
    /// packing decisions, the planner re-derives blocking for the
    /// actual shape (which may differ from the entry's under a
    /// nearest-neighbor match). Entries that fail the Eq. 4 budget for
    /// the active ISA — possible only through a hand-edited database,
    /// since sweeps validate — fall back to the heuristic.
    fn build_from_entry(
        &self,
        m: usize,
        n: usize,
        k: usize,
        entry: &PlanEntry,
        cfg: &PlanConfig,
    ) -> SmmPlan {
        let (mr, nr) = (entry.mr as usize, entry.nr as usize);
        if cfg.isa.check_register_budget(mr, nr, 4).is_err() {
            return SmmPlan::build(m, n, k, cfg);
        }
        let derived = PlanConfig {
            kernel: Some(KernelShape::new(mr, nr)),
            pack_a: Some(entry.pack_a),
            pack_b: Some(entry.pack_b),
            ..cfg.clone()
        };
        SmmPlan::build(m, n, k, &derived)
    }

    /// Persist pending refinement deltas and observed traffic.
    ///
    /// Drains the delta buffer into the database, folds `traffic`
    /// (shape → observed calls, typically from the telemetry shape
    /// table) into the entries' popularity counters, and — when the
    /// source was loaded from a path — rewrites the file. Returns the
    /// number of deltas persisted, or `None` if there was nothing to do
    /// and no traffic to record. Cumulative counters may double-count
    /// traffic across repeated flushes; traffic is a pre-warm ranking
    /// heuristic, not an exact measure, so that is acceptable.
    pub fn flush(
        &self,
        traffic: &[((usize, usize, usize), u64)],
    ) -> Result<Option<usize>, PlanDbError> {
        let Some(db) = &self.db else {
            return Ok(None);
        };
        let drained = self.deltas.drain();
        if drained.is_empty() && traffic.is_empty() {
            return Ok(None);
        }
        let n = drained.len();
        {
            let mut db = db.write().unwrap();
            for entry in drained {
                db.upsert(entry);
            }
            for &((m, nn, k), calls) in traffic {
                db.add_traffic(m, nn, k, calls);
            }
            if let Some(path) = &self.db_path {
                db.save(path)?;
            }
        }
        // relaxed — monotonic counter, read only for reporting.
        self.persisted_deltas.fetch_add(n as u64, Ordering::Relaxed);
        Ok(Some(n))
    }

    /// The hottest shapes by recorded traffic, for pre-warming.
    pub fn hot_shapes(&self, limit: usize) -> Vec<(usize, usize, usize)> {
        match &self.db {
            Some(db) => db.read().unwrap().top_by_traffic(limit),
            None => Vec::new(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TunerStats {
        TunerStats {
            db_entries: self
                .db
                .as_ref()
                .map_or(0, |db| db.read().unwrap().len() as u64),
            // relaxed — independent monotonic counters, reporting only.
            db_hits: self.db_hits.load(Ordering::Relaxed),
            nn_matches: self.nn_matches.load(Ordering::Relaxed),
            online_refines: self.online_refines.load(Ordering::Relaxed),
            untuned_builds: self.untuned_builds.load(Ordering::Relaxed),
            pending_deltas: self.deltas.len() as u64,
            persisted_deltas: self.persisted_deltas.load(Ordering::Relaxed),
        }
    }
}

impl Default for PlanSource {
    fn default() -> Self {
        Self::untuned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_never_loses_to_heuristic() {
        let tuner = Autotuner::default();
        for &(m, n, k) in &[(8usize, 8usize, 8usize), (13, 7, 21), (40, 40, 40)] {
            let t = tuner.tune(m, n, k);
            assert!(t.cycles <= t.heuristic_cycles, "{m}x{n}x{k}: {t:?}");
            assert!(t.gain() >= 1.0);
            assert!(t.candidates > KERNEL_CANDIDATES.len());
        }
    }

    #[test]
    fn tuning_is_cached() {
        let tuner = Autotuner::default();
        let a = tuner.tune(6, 6, 6);
        let b = tuner.tune(6, 6, 6);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(tuner.cached(), 1);
    }

    #[test]
    fn concurrent_tuning_converges_on_one_entry_per_shape() {
        let tuner = Autotuner::default();
        let shapes = [
            (6usize, 6usize, 6usize),
            (13, 7, 21),
            (9, 5, 4),
            (16, 16, 8),
        ];
        std::thread::scope(|s| {
            for t in 0..4 {
                let tuner = &tuner;
                s.spawn(move || {
                    // Every thread tunes every shape, rotated so the
                    // same shape races across threads.
                    for i in 0..shapes.len() {
                        let (m, n, k) = shapes[(i + t) % shapes.len()];
                        let tuned = tuner.tune(m, n, k);
                        assert!(tuned.cycles <= tuned.heuristic_cycles);
                    }
                });
            }
        });
        // Racing tunings of one shape must converge on a single cache
        // entry, and repeat lookups must agree with the cached winner.
        assert_eq!(tuner.cached(), shapes.len());
        for &(m, n, k) in &shapes {
            let again = tuner.tune(m, n, k);
            assert_eq!(again.cycles, tuner.tune(m, n, k).cycles);
        }
        assert_eq!(tuner.cached(), shapes.len());
    }

    #[test]
    fn tuned_plan_executes_correctly() {
        use smm_gemm::gemm_naive;
        use smm_gemm::matrix::Mat;
        let tuner = Autotuner::default();
        let t = tuner.tune(15, 11, 9);
        let a = Mat::<f32>::random(15, 9, 1);
        let b = Mat::<f32>::random(9, 11, 2);
        let mut c = Mat::<f32>::zeros(15, 11);
        let mut c_ref = c.clone();
        crate::exec::execute(&t.plan, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn tuner_respects_thread_budget() {
        let tuner = Autotuner::new(PlanConfig {
            max_threads: 8,
            ..Default::default()
        });
        let t = tuner.tune(64, 96, 32);
        assert!(t.plan.threads() <= 8);
    }

    fn db_with(shapes: &[(usize, usize, usize)], cfg: &PlanConfig) -> PlanDb {
        let mut db = PlanDb::new(cfg.isa);
        for &(m, n, k) in shapes {
            db.upsert(tune_shape(m, n, k, cfg).to_entry(4, false));
        }
        db
    }

    #[test]
    fn untuned_source_matches_plain_build() {
        let cfg = PlanConfig::default();
        let src = PlanSource::untuned();
        let a = src.plan_for(13, 7, 21, &cfg);
        let b = SmmPlan::build(13, 7, 21, &cfg);
        assert_eq!(a.kernel, b.kernel);
        assert_eq!((a.pack_a, a.pack_b), (b.pack_a, b.pack_b));
        let s = src.stats();
        assert_eq!(s.untuned_builds, 1);
        assert_eq!(s.lookups(), 1);
        assert_eq!(s.db_coverage(), 0.0);
        assert!(src.flush(&[]).unwrap().is_none(), "no db, nothing to do");
    }

    #[test]
    fn source_walks_the_two_stage_ladder() {
        let cfg = PlanConfig::default();
        let swept = tune_shape(8, 8, 8, &cfg);
        let src = PlanSource::with_db(db_with(&[(8, 8, 8)], &cfg), None);
        // Exact hit: reproduces the swept winner without re-simulating.
        let p = src.plan_for(8, 8, 8, &cfg);
        assert_eq!(p.kernel, swept.plan.kernel);
        assert_eq!(src.stats().db_hits, 1);
        // Close shape: nearest-neighbor match borrows the kernel.
        let p = src.plan_for(9, 8, 8, &cfg);
        assert_eq!(p.kernel, swept.plan.kernel);
        assert_eq!(src.stats().nn_matches, 1);
        // Far shape: online refinement, recorded as a delta and
        // answered from the database on the next lookup.
        src.plan_for(40, 40, 40, &cfg);
        let s = src.stats();
        assert_eq!(s.online_refines, 1);
        assert_eq!(s.pending_deltas, 1);
        assert_eq!(s.db_entries, 2, "refinement upserted");
        src.plan_for(40, 40, 40, &cfg);
        let s = src.stats();
        assert_eq!(s.db_hits, 2, "second lookup is an exact hit");
        assert_eq!(s.online_refines, 1);
        assert!(s.db_coverage() > 0.7);
    }

    #[test]
    fn refinement_disabled_falls_back_to_heuristic() {
        let cfg = PlanConfig::default();
        let mut src = PlanSource::with_db(db_with(&[(8, 8, 8)], &cfg), None);
        src.set_refine_online(false);
        src.plan_for(40, 40, 40, &cfg);
        let s = src.stats();
        assert_eq!(s.online_refines, 0);
        assert_eq!(s.untuned_builds, 1);
        assert_eq!(s.pending_deltas, 0);
    }

    #[test]
    fn flush_persists_deltas_and_traffic() {
        let cfg = PlanConfig::default();
        let dir = std::env::temp_dir().join(format!("smm-core-tune-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flush.smmdb");
        let db = db_with(&[(8, 8, 8)], &cfg);
        db.save(&path).unwrap();
        let src = PlanSource::with_db(db, Some(path.clone()));
        src.plan_for(40, 40, 40, &cfg);
        let n = src.flush(&[((8, 8, 8), 17)]).unwrap();
        assert_eq!(n, Some(1));
        let s = src.stats();
        assert_eq!(s.persisted_deltas, 1);
        assert_eq!(s.pending_deltas, 0);
        assert_eq!(src.hot_shapes(4), vec![(8, 8, 8)]);
        // The file round-trips with the refined entry and traffic.
        let reloaded = PlanDb::load(&path).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert!(reloaded.get(40, 40, 40).unwrap().refined);
        assert_eq!(reloaded.get(8, 8, 8).unwrap().traffic, 17);
        // Nothing pending → flush with no traffic is a no-op.
        assert_eq!(src.flush(&[]).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn infeasible_entry_falls_back_to_heuristic() {
        let cfg = PlanConfig::default();
        let mut db = PlanDb::new(cfg.isa);
        // 32x12 needs 512-bit vectors; infeasible on neon128. Only a
        // hand-edited database can contain this, and it must degrade
        // gracefully rather than build an over-budget kernel.
        db.upsert(PlanEntry {
            m: 8,
            n: 8,
            k: 8,
            mr: 32,
            nr: 12,
            pack_a: false,
            pack_b: false,
            refined: false,
            elem_bytes: 4,
            cycles: 1,
            heuristic_cycles: 1,
            traffic: 0,
        });
        let src = PlanSource::with_db(db, None);
        let p = src.plan_for(8, 8, 8, &cfg);
        let h = SmmPlan::build(8, 8, 8, &cfg);
        assert_eq!(p.kernel, h.kernel);
        assert!(cfg
            .isa
            .check_register_budget(p.kernel.mr, p.kernel.nr, 4)
            .is_ok());
    }

    #[test]
    fn db_plans_execute_correctly() {
        use smm_gemm::gemm_naive;
        use smm_gemm::matrix::Mat;
        let cfg = PlanConfig::default();
        let src = PlanSource::with_db(db_with(&[(15, 11, 9)], &cfg), None);
        // Exercise the exact-hit and the NN-match paths end to end.
        for (m, n, k) in [(15usize, 11usize, 9usize), (14, 12, 10)] {
            let plan = src.plan_for(m, n, k, &cfg);
            let a = Mat::<f32>::random(m, k, 1);
            let b = Mat::<f32>::random(k, n, 2);
            let mut c = Mat::<f32>::zeros(m, n);
            let mut c_ref = c.clone();
            crate::exec::execute(&plan, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
            gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
            assert!(c.max_abs_diff(&c_ref) < 1e-3, "{m}x{n}x{k}");
        }
        let s = src.stats();
        assert_eq!(s.db_hits, 1);
        assert_eq!(s.nn_matches, 1);
    }
}
