//! Simulator-driven auto-tuning.
//!
//! §IV's "adaptive code generation" recommends picking the kernel
//! combination per input shape. The heuristic planner ([`crate::plan`])
//! does this with closed-form models; the [`Autotuner`] goes further,
//! the way LIBXSMM's JIT measures what it generates: it *simulates*
//! each candidate plan on the Phytium 2000+ model and keeps the one
//! with the fewest cycles. Tuning costs milliseconds per shape and is
//! cached, which matches the SMM usage pattern (few distinct shapes,
//! many invocations).

use std::collections::HashMap;

use smm_sync::sync::RwLock;

use smm_model::KernelShape;

use crate::plan::{PlanConfig, SmmPlan, KERNEL_CANDIDATES};
use crate::simprog::build_sim;

/// Outcome of tuning one shape.
#[derive(Debug, Clone)]
pub struct TunedPlan {
    /// The winning plan.
    pub plan: SmmPlan,
    /// Simulated cycles of the winner.
    pub cycles: u64,
    /// Simulated cycles of the heuristic (model-driven) plan, for
    /// reporting the tuning gain.
    pub heuristic_cycles: u64,
    /// Number of candidate plans simulated.
    pub candidates: usize,
}

impl TunedPlan {
    /// Speedup of the tuned plan over the heuristic plan.
    pub fn gain(&self) -> f64 {
        self.heuristic_cycles as f64 / self.cycles as f64
    }
}

/// Number of independently locked cache shards (power of two, same
/// scheme as the runtime's `ShardedPlanCache`): tuning a shape takes
/// milliseconds, so a single `Mutex` would serialize every *cached*
/// lookup behind any in-flight tuning of an unrelated shape.
const SHARDS: usize = 16;

fn shard_of(key: (usize, usize, usize)) -> usize {
    // Fibonacci-hash the shape so near-identical shapes (the common
    // case in sweeps) spread across shards.
    let h = key
        .0
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(key.1.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(key.2.wrapping_mul(0x1656_67B1_9E37_79F9));
    (h >> 48) & (SHARDS - 1)
}

type Shard = RwLock<HashMap<(usize, usize, usize), TunedPlan>>;

/// Exhaustive-ish candidate search with sharded-lock caching: cached
/// lookups take a shared lock on one shard only, candidate simulation
/// happens outside any lock, and the insert double-checks so
/// concurrent tunings of one shape converge on a single entry.
pub struct Autotuner {
    base: PlanConfig,
    shards: [Shard; SHARDS],
}

impl Autotuner {
    /// Tuner deriving candidates from a base configuration (thread
    /// budget etc. are taken from `base`).
    pub fn new(base: PlanConfig) -> Self {
        Autotuner {
            base,
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }

    /// Candidate configurations for a shape: every feasible kernel from
    /// the planner's candidate set crossed with the packing choices.
    fn candidates(&self) -> Vec<PlanConfig> {
        let mut out = Vec::new();
        for &(mr, nr) in KERNEL_CANDIDATES {
            for pack_b in [Some(false), Some(true)] {
                for pack_a in [Some(false), Some(true)] {
                    out.push(PlanConfig {
                        kernel: Some(KernelShape::new(mr, nr)),
                        pack_a,
                        pack_b,
                        ..self.base.clone()
                    });
                }
            }
        }
        out
    }

    /// Tune a shape (cached).
    pub fn tune(&self, m: usize, n: usize, k: usize) -> TunedPlan {
        let key = (m, n, k);
        let shard = &self.shards[shard_of(key)];
        if let Some(hit) = shard.read().unwrap().get(&key) {
            return hit.clone();
        }
        // Simulate outside any lock: tuning one shape must not block
        // cached lookups of the fifteen unrelated shards, nor even
        // cached lookups of other shapes on this shard.
        let heuristic = SmmPlan::build(m, n, k, &self.base);
        let heuristic_cycles = build_sim(&heuristic).run().cycles;

        let mut best_plan = heuristic;
        let mut best_cycles = heuristic_cycles;
        let candidates = self.candidates();
        let n_candidates = candidates.len();
        for cfg in candidates {
            let plan = SmmPlan::build(m, n, k, &cfg);
            let cycles = build_sim(&plan).run().cycles;
            if cycles < best_cycles {
                best_cycles = cycles;
                best_plan = plan;
            }
        }
        let tuned = TunedPlan {
            plan: best_plan,
            cycles: best_cycles,
            heuristic_cycles,
            candidates: n_candidates + 1,
        };
        let mut map = shard.write().unwrap();
        if let Some(hit) = map.get(&key) {
            // A concurrent tuning won the race; adopt its result so
            // every caller observes one entry per shape.
            return hit.clone();
        }
        map.insert(key, tuned.clone());
        tuned
    }

    /// Shapes tuned so far.
    pub fn cached(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }
}

impl Default for Autotuner {
    fn default() -> Self {
        Self::new(PlanConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_never_loses_to_heuristic() {
        let tuner = Autotuner::default();
        for &(m, n, k) in &[(8usize, 8usize, 8usize), (13, 7, 21), (40, 40, 40)] {
            let t = tuner.tune(m, n, k);
            assert!(t.cycles <= t.heuristic_cycles, "{m}x{n}x{k}: {t:?}");
            assert!(t.gain() >= 1.0);
            assert!(t.candidates > KERNEL_CANDIDATES.len());
        }
    }

    #[test]
    fn tuning_is_cached() {
        let tuner = Autotuner::default();
        let a = tuner.tune(6, 6, 6);
        let b = tuner.tune(6, 6, 6);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(tuner.cached(), 1);
    }

    #[test]
    fn concurrent_tuning_converges_on_one_entry_per_shape() {
        let tuner = Autotuner::default();
        let shapes = [
            (6usize, 6usize, 6usize),
            (13, 7, 21),
            (9, 5, 4),
            (16, 16, 8),
        ];
        std::thread::scope(|s| {
            for t in 0..4 {
                let tuner = &tuner;
                s.spawn(move || {
                    // Every thread tunes every shape, rotated so the
                    // same shape races across threads.
                    for i in 0..shapes.len() {
                        let (m, n, k) = shapes[(i + t) % shapes.len()];
                        let tuned = tuner.tune(m, n, k);
                        assert!(tuned.cycles <= tuned.heuristic_cycles);
                    }
                });
            }
        });
        // Racing tunings of one shape must converge on a single cache
        // entry, and repeat lookups must agree with the cached winner.
        assert_eq!(tuner.cached(), shapes.len());
        for &(m, n, k) in &shapes {
            let again = tuner.tune(m, n, k);
            assert_eq!(again.cycles, tuner.tune(m, n, k).cycles);
        }
        assert_eq!(tuner.cached(), shapes.len());
    }

    #[test]
    fn tuned_plan_executes_correctly() {
        use smm_gemm::gemm_naive;
        use smm_gemm::matrix::Mat;
        let tuner = Autotuner::default();
        let t = tuner.tune(15, 11, 9);
        let a = Mat::<f32>::random(15, 9, 1);
        let b = Mat::<f32>::random(9, 11, 2);
        let mut c = Mat::<f32>::zeros(15, 11);
        let mut c_ref = c.clone();
        crate::exec::execute(&t.plan, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn tuner_respects_thread_budget() {
        let tuner = Autotuner::new(PlanConfig {
            max_threads: 8,
            ..Default::default()
        });
        let t = tuner.tune(64, 96, 32);
        assert!(t.plan.threads() <= 8);
    }
}
