//! Compiled plans: flattened tile schedules with precomputed offsets.
//!
//! §IV of the paper recommends JIT techniques partly because they
//! "pre-calculate the offsets of memory accesses". [`SmmPlan`] still
//! walks its tile tables and recomputes element offsets on every call;
//! a [`CompiledPlan`] does that walk once, emitting a flat schedule of
//! [`TileOp`]s whose operand offsets, kernel dispatch and packing
//! directives are all resolved. Executing a compiled plan is a single
//! pass over the schedule — the steady-state dispatch cost for the
//! repeated tiny GEMMs that motivate SMM.
//!
//! Compiled plans are single-threaded by design (batch-level
//! parallelism composes on top, see [`crate::batch`]).

use smm_gemm::matrix::{MatMut, MatRef};
use smm_gemm::naive::check_dims;
use smm_gemm::pack::{pack_a_exact, pack_b_exact};
use smm_kernels::Scalar;

use crate::direct::DirectKernel;
use crate::plan::SmmPlan;

/// One packing directive in the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PackOp {
    /// Pack an A panel: `(row_offset, rows, buffer_index)`.
    A(usize, usize, usize),
    /// Pack a B sliver: `(col_offset, cols, buffer_index)`.
    B(usize, usize, usize),
}

/// One micro-tile invocation with fully resolved offsets.
#[derive(Debug, Clone, Copy)]
struct TileOp {
    kernel: DirectKernel,
    /// Offset of `A(i0, kk)` in the caller's buffer (element units),
    /// or index of the packed-A buffer when `a_packed`.
    a_off: usize,
    a_packed: bool,
    a_stride: usize,
    /// Offset of `B(kk, j0)` or packed-B buffer index.
    b_off: usize,
    b_packed: bool,
    /// Offset of `C(i0, j0)`.
    c_off: usize,
    kc: usize,
}

/// A plan compiled against concrete leading dimensions.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    m: usize,
    n: usize,
    k: usize,
    lda: usize,
    ldb: usize,
    ldc: usize,
    /// Interleaved schedule: packing directives then tiles, per k-block.
    schedule: Vec<(Vec<PackOp>, Vec<TileOp>)>,
    n_a_buffers: usize,
    n_b_buffers: usize,
}

impl CompiledPlan {
    /// Flatten `plan` for operands with the given leading dimensions.
    pub fn compile(plan: &SmmPlan, lda: usize, ldb: usize, ldc: usize) -> Self {
        assert!(
            lda >= plan.m && ldb >= plan.k && ldc >= plan.m,
            "leading dimensions too small"
        );
        let nr = plan.kernel.nr;
        let mut schedule = Vec::new();
        let mut n_a_buffers = 0usize;
        let mut n_b_buffers = 0usize;

        let mut kk = 0;
        while kk < plan.k {
            let kc = plan.kc.min(plan.k - kk);
            let mut packs = Vec::new();
            // B packing decisions per sliver, with stable buffer ids.
            let mut b_buffer: Vec<Option<usize>> = Vec::with_capacity(plan.n_tiles.len());
            for jt in &plan.n_tiles {
                let edge = jt.logical < nr;
                if plan.pack_b || (edge && plan.pack_edge_b) {
                    let id = n_b_buffers;
                    n_b_buffers += 1;
                    packs.push(PackOp::B(jt.offset, jt.logical, id));
                    b_buffer.push(Some(id));
                } else {
                    b_buffer.push(None);
                }
            }
            let mut tiles = Vec::new();
            for it in &plan.m_tiles {
                let a_buffer = if plan.pack_a {
                    let id = n_a_buffers;
                    n_a_buffers += 1;
                    packs.push(PackOp::A(it.offset, it.logical, id));
                    Some(id)
                } else {
                    None
                };
                for (s, jt) in plan.n_tiles.iter().enumerate() {
                    tiles.push(TileOp {
                        kernel: DirectKernel::new(it.logical, jt.logical),
                        a_off: a_buffer.unwrap_or(kk * lda + it.offset),
                        a_packed: a_buffer.is_some(),
                        a_stride: if a_buffer.is_some() { it.logical } else { lda },
                        b_off: b_buffer[s].unwrap_or(jt.offset * ldb + kk),
                        b_packed: b_buffer[s].is_some(),
                        c_off: jt.offset * ldc + it.offset,
                        kc,
                    });
                }
            }
            schedule.push((packs, tiles));
            kk += kc;
        }
        CompiledPlan {
            m: plan.m,
            n: plan.n,
            k: plan.k,
            lda,
            ldb,
            ldc,
            schedule,
            n_a_buffers,
            n_b_buffers,
        }
    }

    /// Total tile invocations per call.
    pub fn tiles(&self) -> usize {
        self.schedule.iter().map(|(_, t)| t.len()).sum()
    }

    /// Execute `C = alpha·A·B + beta·C` over raw column-major slices
    /// with the compiled leading dimensions. `bufs` is reusable scratch
    /// (cleared and refilled here; keep it across calls to avoid
    /// allocation).
    pub fn execute<S: Scalar>(
        &self,
        alpha: S,
        a: &[S],
        b: &[S],
        beta: S,
        c: &mut [S],
        bufs: &mut CompiledScratch<S>,
    ) {
        let ar = MatRef::from_slice(a, self.m, self.k, self.lda);
        let br = MatRef::from_slice(b, self.k, self.n, self.ldb);
        let mut cm = MatMut::from_slice(c, self.m, self.n, self.ldc);
        check_dims(&ar, &br, &cm.rb());
        cm.scale(beta);
        bufs.a.resize(self.n_a_buffers, Vec::new());
        bufs.b.resize(self.n_b_buffers, Vec::new());

        let mut kk = 0;
        for (packs, tiles) in &self.schedule {
            let kc = tiles.first().map_or(self.k - kk, |t| t.kc);
            for p in packs {
                match *p {
                    PackOp::A(off, rows, id) => {
                        pack_a_exact(ar, off, kk, rows, kc, &mut bufs.a[id])
                    }
                    PackOp::B(off, cols, id) => {
                        pack_b_exact(br, kk, off, kc, cols, &mut bufs.b[id])
                    }
                }
            }
            for t in tiles {
                let c_slice = &mut cm.data_mut()[t.c_off..];
                match (t.a_packed, t.b_packed) {
                    (true, true) => t.kernel.run_bp(
                        t.kc,
                        alpha,
                        &bufs.a[t.a_off],
                        t.a_stride,
                        &bufs.b[t.b_off],
                        c_slice,
                        self.ldc,
                    ),
                    (true, false) => t.kernel.run_bd(
                        t.kc,
                        alpha,
                        &bufs.a[t.a_off],
                        t.a_stride,
                        &b[t.b_off..],
                        self.ldb,
                        c_slice,
                        self.ldc,
                    ),
                    (false, true) => t.kernel.run_bp(
                        t.kc,
                        alpha,
                        &a[t.a_off..],
                        t.a_stride,
                        &bufs.b[t.b_off],
                        c_slice,
                        self.ldc,
                    ),
                    (false, false) => t.kernel.run_bd(
                        t.kc,
                        alpha,
                        &a[t.a_off..],
                        t.a_stride,
                        &b[t.b_off..],
                        self.ldb,
                        c_slice,
                        self.ldc,
                    ),
                }
            }
            kk += kc;
        }
    }
}

/// Reusable packing scratch for [`CompiledPlan::execute`].
#[derive(Debug, Default)]
pub struct CompiledScratch<S: Scalar> {
    a: Vec<Vec<S>>,
    b: Vec<Vec<S>>,
}

impl<S: Scalar> CompiledScratch<S> {
    /// Empty scratch.
    pub fn new() -> Self {
        CompiledScratch {
            a: Vec::new(),
            b: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanConfig;
    use smm_gemm::gemm_naive;
    use smm_gemm::matrix::Mat;

    fn check(m: usize, n: usize, k: usize, cfg: &PlanConfig) {
        let plan = SmmPlan::build(m, n, k, cfg);
        let compiled = CompiledPlan::compile(&plan, m, k, m);
        let a = Mat::<f32>::random(m, k, 61);
        let b = Mat::<f32>::random(k, n, 62);
        let mut c = Mat::<f32>::random(m, n, 63);
        let mut c_ref = c.clone();
        let mut scratch = CompiledScratch::new();
        compiled.execute(1.5, a.data(), b.data(), 0.5, c.data_mut(), &mut scratch);
        gemm_naive(1.5, a.as_ref(), b.as_ref(), 0.5, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3, "{m}x{n}x{k}");
    }

    #[test]
    fn compiled_matches_naive() {
        let cfg = PlanConfig::default();
        check(8, 8, 8, &cfg);
        check(75, 12, 64, &cfg);
        check(33, 27, 19, &cfg);
        check(1, 1, 1, &cfg);
    }

    #[test]
    fn compiled_with_forced_packing() {
        for pa in [Some(false), Some(true)] {
            for pb in [Some(false), Some(true)] {
                let cfg = PlanConfig {
                    pack_a: pa,
                    pack_b: pb,
                    ..Default::default()
                };
                check(20, 14, 11, &cfg);
            }
        }
    }

    #[test]
    fn compiled_across_k_blocks() {
        let cfg = PlanConfig::default();
        check(16, 16, 1500, &cfg);
    }

    #[test]
    fn tile_count_matches_plan() {
        let plan = SmmPlan::build(32, 24, 16, &PlanConfig::default());
        let compiled = CompiledPlan::compile(&plan, 32, 16, 32);
        assert_eq!(compiled.tiles(), plan.m_tiles.len() * plan.n_tiles.len());
    }

    #[test]
    fn scratch_reuse_is_stable() {
        let plan = SmmPlan::build(
            12,
            12,
            12,
            &PlanConfig {
                pack_b: Some(true),
                ..Default::default()
            },
        );
        let compiled = CompiledPlan::compile(&plan, 12, 12, 12);
        let a = Mat::<f32>::random(12, 12, 1);
        let b = Mat::<f32>::random(12, 12, 2);
        let mut scratch = CompiledScratch::new();
        let mut first = vec![0.0f32; 144];
        compiled.execute(1.0, a.data(), b.data(), 0.0, &mut first, &mut scratch);
        let mut second = vec![0.0f32; 144];
        compiled.execute(1.0, a.data(), b.data(), 0.0, &mut second, &mut scratch);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "leading dimensions")]
    fn bad_ld_rejected() {
        let plan = SmmPlan::build(8, 8, 8, &PlanConfig::default());
        CompiledPlan::compile(&plan, 4, 8, 8);
    }
}
