//! Error type for validated SMM entry points.

use std::fmt;

/// Which operand of `C = alpha·A·B + beta·C` an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// The `A` operand (`m × k`).
    A,
    /// The `B` operand (`k × n`).
    B,
    /// The `C` operand (`m × n`).
    C,
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::A => write!(f, "A"),
            Operand::B => write!(f, "B"),
            Operand::C => write!(f, "C"),
        }
    }
}

/// Validation failure of an SMM descriptor or buffer set.
///
/// Returned by the non-panicking entry points ([`crate::StridedBatch::try_new`],
/// [`crate::Smm::gemm_batch`]); the legacy panicking wrappers format
/// these through `Display`, so their messages are unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmmError {
    /// A leading dimension is smaller than the operand's row count.
    BadLeadingDim {
        /// Offending operand.
        operand: Operand,
        /// The leading dimension supplied.
        ld: usize,
        /// The minimum legal value.
        min: usize,
    },
    /// Consecutive matrices of a batch overlap: the inter-matrix
    /// stride is smaller than one matrix.
    OverlappingStride {
        /// Offending operand.
        operand: Operand,
        /// The stride supplied.
        stride: usize,
        /// The minimum legal value (`ld * cols`).
        min: usize,
    },
    /// A flat buffer cannot hold every matrix of the batch.
    BufferTooShort {
        /// Offending operand.
        operand: Operand,
        /// The buffer length supplied.
        len: usize,
        /// The minimum legal length.
        need: usize,
    },
}

impl fmt::Display for SmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmmError::BadLeadingDim { operand, ld, min } => {
                write!(f, "{operand} leading dimension too small: {ld} < {min}")
            }
            SmmError::OverlappingStride {
                operand,
                stride,
                min,
            } => {
                write!(f, "{operand} matrices overlap: stride {stride} < {min}")
            }
            SmmError::BufferTooShort { operand, len, need } => {
                write!(f, "{operand} buffer too short: {len} < {need}")
            }
        }
    }
}

impl std::error::Error for SmmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_operand() {
        let e = SmmError::BufferTooShort {
            operand: Operand::C,
            len: 4,
            need: 16,
        };
        assert_eq!(e.to_string(), "C buffer too short: 4 < 16");
        let e = SmmError::OverlappingStride {
            operand: Operand::A,
            stride: 3,
            min: 12,
        };
        assert!(e.to_string().contains("A matrices overlap"));
        let e = SmmError::BadLeadingDim {
            operand: Operand::B,
            ld: 2,
            min: 8,
        };
        assert!(e.to_string().contains("B leading dimension too small"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes(_: &dyn std::error::Error) {}
        takes(&SmmError::BadLeadingDim {
            operand: Operand::A,
            ld: 1,
            min: 2,
        });
    }
}
