//! Batched small-scale GEMM.
//!
//! The workloads that motivate SMM (DNN layers, block-sparse formats,
//! ABFT) multiply *many* small matrices of the same shape. LIBXSMM's
//! batched interface is the x86 precedent; here a single cached plan
//! serves the whole batch, and — when the batch is large but each GEMM
//! is tiny — parallelism goes *across* batch entries instead of inside
//! one GEMM, which sidesteps every §III-D pitfall at once (nothing
//! small is ever split). Entries are dispatched to the instance's
//! persistent [`TaskPool`](smm_gemm::pool::TaskPool), not to freshly
//! spawned threads. Each entry executes through
//! [`execute_traced`] and therefore draws its packing buffers from the
//! worker's thread-local [`smm_gemm::arena`]: the workers are
//! persistent, so a warmed-up batch loop packs every entry without
//! allocating.

use std::time::Instant;

use smm_gemm::matrix::{MatMut, MatRef};
use smm_kernels::Scalar;

use crate::error::{Operand, SmmError};
use crate::exec::execute_traced;
use crate::plan::{PlanConfig, SmmPlan};
use crate::smm::Smm;
use crate::telemetry::{now_if, CallSite, Phase, Recorder};
use crate::trace::{shape_arg, SpanName};

/// Arguments describing one strided batch: `batch` GEMMs of identical
/// shape laid out at constant strides in three flat buffers.
#[derive(Debug, Clone, Copy)]
pub struct StridedBatch {
    /// Rows of each `A`/`C`.
    pub m: usize,
    /// Columns of each `B`/`C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Number of GEMMs.
    pub batch: usize,
    /// Leading dimension of each `A` (>= m).
    pub lda: usize,
    /// Elements between consecutive `A` matrices (>= lda*k).
    pub stride_a: usize,
    /// Leading dimension of each `B` (>= k).
    pub ldb: usize,
    /// Elements between consecutive `B` matrices (>= ldb*n).
    pub stride_b: usize,
    /// Leading dimension of each `C` (>= m).
    pub ldc: usize,
    /// Elements between consecutive `C` matrices (>= ldc*n).
    pub stride_c: usize,
}

impl StridedBatch {
    /// Dense packing: `lda = m`, `ldb = k`, `ldc = m`, strides exactly
    /// one matrix apart.
    pub fn dense(m: usize, n: usize, k: usize, batch: usize) -> Self {
        StridedBatch {
            m,
            n,
            k,
            batch,
            lda: m.max(1),
            stride_a: m.max(1) * k,
            ldb: k.max(1),
            stride_b: k.max(1) * n,
            ldc: m.max(1),
            stride_c: m.max(1) * n,
        }
    }

    /// Validated construction: rejects leading dimensions smaller than
    /// the operand's rows and strides that would make consecutive
    /// matrices overlap.
    #[allow(clippy::too_many_arguments)]
    pub fn try_new(
        m: usize,
        n: usize,
        k: usize,
        batch: usize,
        lda: usize,
        stride_a: usize,
        ldb: usize,
        stride_b: usize,
        ldc: usize,
        stride_c: usize,
    ) -> Result<Self, SmmError> {
        let desc = StridedBatch {
            m,
            n,
            k,
            batch,
            lda,
            stride_a,
            ldb,
            stride_b,
            ldc,
            stride_c,
        };
        desc.validate_geometry()?;
        Ok(desc)
    }

    fn validate_geometry(&self) -> Result<(), SmmError> {
        let lds = [
            (Operand::A, self.lda, self.m.max(1)),
            (Operand::B, self.ldb, self.k.max(1)),
            (Operand::C, self.ldc, self.m.max(1)),
        ];
        for (operand, ld, min) in lds {
            if ld < min {
                return Err(SmmError::BadLeadingDim { operand, ld, min });
            }
        }
        let strides = [
            (Operand::A, self.stride_a, self.lda * self.k),
            (Operand::B, self.stride_b, self.ldb * self.n),
            (Operand::C, self.stride_c, self.ldc * self.n),
        ];
        for (operand, stride, min) in strides {
            if stride < min {
                return Err(SmmError::OverlappingStride {
                    operand,
                    stride,
                    min,
                });
            }
        }
        Ok(())
    }

    fn validate_buffers(&self, a_len: usize, b_len: usize, c_len: usize) -> Result<(), SmmError> {
        if self.batch == 0 {
            return Ok(());
        }
        let need = |stride: usize, last: usize| (self.batch - 1) * stride + last;
        if self.k > 0 && self.m > 0 {
            let need_a = need(self.stride_a, self.lda * (self.k - 1) + self.m);
            if a_len < need_a {
                return Err(SmmError::BufferTooShort {
                    operand: Operand::A,
                    len: a_len,
                    need: need_a,
                });
            }
        }
        if self.k > 0 && self.n > 0 {
            let need_b = need(self.stride_b, self.ldb * (self.n - 1) + self.k);
            if b_len < need_b {
                return Err(SmmError::BufferTooShort {
                    operand: Operand::B,
                    len: b_len,
                    need: need_b,
                });
            }
        }
        if self.m > 0 && self.n > 0 {
            let need_c = need(self.stride_c, self.ldc * (self.n - 1) + self.m);
            if c_len < need_c {
                return Err(SmmError::BufferTooShort {
                    operand: Operand::C,
                    len: c_len,
                    need: need_c,
                });
            }
        }
        Ok(())
    }
}

impl<S: Scalar> Smm<S> {
    /// Strided-batch GEMM: `C[i] = alpha * A[i] * B[i] + beta * C[i]`
    /// for `i in 0..batch`, with full validation. One plan (built
    /// single-threaded — each GEMM is small) serves every entry; when
    /// this `Smm` allows multiple threads, entries are distributed
    /// across the instance's persistent pool.
    pub fn gemm_batch(
        &self,
        desc: &StridedBatch,
        alpha: S,
        a: &[S],
        b: &[S],
        beta: S,
        c: &mut [S],
    ) -> Result<(), SmmError> {
        desc.validate_geometry()?;
        desc.validate_buffers(a.len(), b.len(), c.len())?;
        if desc.batch == 0 || desc.m == 0 || desc.n == 0 {
            return Ok(());
        }
        if desc.k == 0 {
            for i in 0..desc.batch {
                let c_i = &mut c[i * desc.stride_c..];
                MatMut::from_slice(c_i, desc.m, desc.n, desc.ldc).scale(beta);
            }
            return Ok(());
        }
        let _root = self
            .tracer
            .span(SpanName::GemmBatch, shape_arg(desc.m, desc.n, desc.k));
        let rec = self.telemetry().recorder(CallSite::GemmBatch);
        let t_call = rec.now();
        // Intra-GEMM threading is deliberately disabled: batch-level
        // parallelism never splits a small dimension.
        let plan_cfg = PlanConfig {
            max_threads: 1,
            ..self.config().clone()
        };
        let plan = SmmPlan::build(desc.m, desc.n, desc.k, &plan_cfg);
        rec.span_since(Phase::PlanLookup, t_call);
        let threads = self.config().max_threads.clamp(1, desc.batch);

        // Entries are tiny, so per-entry clock reads can rival the
        // arithmetic itself. Fine-grained (per-entry) recording is only
        // worthwhile when the plan packs — the pack spans amortize the
        // reads; otherwise each group records one coarse Compute span.
        let fine = rec.active() && (plan.pack_a || plan.pack_b);
        let entry_rec = if fine { rec } else { Recorder::none() };
        let finish = |total: Option<Instant>| {
            if let Some(t0) = total {
                self.telemetry().record_call(
                    CallSite::GemmBatch,
                    desc.m,
                    desc.n,
                    desc.k,
                    std::mem::size_of::<S>(),
                    desc.batch as u64,
                    t0.elapsed().as_nanos() as u64,
                );
            }
        };

        let run_entry = |plan: &SmmPlan, c_i: &mut [S], i: usize| {
            let a_i = &a[i * desc.stride_a..];
            let b_i = &b[i * desc.stride_b..];
            let ar = MatRef::from_slice(a_i, desc.m, desc.k, desc.lda);
            let br = MatRef::from_slice(b_i, desc.k, desc.n, desc.ldb);
            let cm = MatMut::from_slice(c_i, desc.m, desc.n, desc.ldc);
            execute_traced(self.pool(), plan, entry_rec, alpha, ar, br, beta, cm);
        };

        if threads <= 1 {
            let t0 = if fine { None } else { rec.now() };
            for i in 0..desc.batch {
                run_entry(&plan, &mut c[i * desc.stride_c..], i);
            }
            rec.span_since(Phase::Compute, t0);
            finish(t_call);
            return Ok(());
        }

        // Split C into disjoint per-entry windows, then deal the
        // entries round-robin into one task per worker; the tasks run
        // on the persistent pool (no thread spawns).
        let mut windows: Vec<(usize, &mut [S])> = Vec::with_capacity(desc.batch);
        let mut rest = c;
        for i in 0..desc.batch {
            let take = if i + 1 == desc.batch {
                rest.len()
            } else {
                desc.stride_c
            };
            let (win, tail) = rest.split_at_mut(take);
            windows.push((i, win));
            rest = tail;
        }
        let mut groups: Vec<Vec<(usize, &mut [S])>> = (0..threads).map(|_| Vec::new()).collect();
        for (pos, entry) in windows.into_iter().enumerate() {
            groups[pos % threads].push(entry);
        }
        let plan_ref = &plan;
        let run_entry_ref = &run_entry;
        let timed = rec.active();
        // Capture parentage here: the groups run on pool threads.
        let tracer = self.tracer();
        let ctx = tracer.current_ctx();
        let tasks: Vec<_> = groups
            .into_iter()
            .enumerate()
            .map(|(g, group)| {
                move || {
                    let _w = tracer.span_in(ctx, SpanName::Worker, g as u64);
                    let t0 = now_if(timed);
                    for (i, win) in group {
                        run_entry_ref(plan_ref, win, i);
                    }
                    t0.map_or(0u64, |t| t.elapsed().as_nanos() as u64)
                }
            })
            .collect();
        let t_dispatch = rec.now();
        let busys = self.pool().run_scoped(tasks);
        if let Some(td) = t_dispatch {
            let dispatch_ns = td.elapsed().as_nanos() as u64;
            let max_busy = busys.iter().copied().max().unwrap_or(0);
            if !fine {
                // One span for the parallel section's critical path —
                // per-group spans would cost more than these entries.
                rec.span_ns(Phase::Compute, max_busy);
            }
            rec.span_ns(Phase::Dispatch, dispatch_ns);
            // Barrier slack: the caller's wait beyond the slowest group.
            rec.span_ns(Phase::Sync, dispatch_ns.saturating_sub(max_busy));
        }
        finish(t_call);
        Ok(())
    }

    /// Panicking wrapper over [`Smm::gemm_batch`], kept for the
    /// pre-builder API. The panic messages are the [`SmmError`]
    /// `Display` strings.
    pub fn gemm_strided_batch(
        &self,
        desc: StridedBatch,
        alpha: S,
        a: &[S],
        b: &[S],
        beta: S,
        c: &mut [S],
    ) {
        if let Err(e) = self.gemm_batch(&desc, alpha, a, b, beta, c) {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_gemm::gemm_naive;
    use smm_gemm::matrix::Mat;

    fn fill(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                ((state >> 33) as i64 % 17 - 8) as f32 * 0.25
            })
            .collect()
    }

    fn check_batch(desc: StridedBatch, threads: usize) {
        let a = fill((desc.batch.max(1)) * desc.stride_a + desc.lda * desc.k, 1);
        let b = fill((desc.batch.max(1)) * desc.stride_b + desc.ldb * desc.n, 2);
        let c0 = fill((desc.batch.max(1)) * desc.stride_c + desc.ldc * desc.n, 3);
        let mut c = c0.clone();
        let smm = Smm::<f32>::with_threads(threads);
        smm.gemm_strided_batch(desc, 1.5, &a, &b, 0.5, &mut c);
        for i in 0..desc.batch {
            let ar = MatRef::from_slice(&a[i * desc.stride_a..], desc.m, desc.k, desc.lda);
            let br = MatRef::from_slice(&b[i * desc.stride_b..], desc.k, desc.n, desc.ldb);
            let mut want = Mat::<f32>::from_fn(desc.m, desc.n, |r, col| {
                c0[i * desc.stride_c + col * desc.ldc + r]
            });
            gemm_naive(1.5, ar, br, 0.5, want.as_mut());
            for col in 0..desc.n {
                for r in 0..desc.m {
                    let got = c[i * desc.stride_c + col * desc.ldc + r];
                    assert!(
                        (got - want[(r, col)]).abs() < 1e-3,
                        "entry {i} ({r},{col}): {got} vs {}",
                        want[(r, col)]
                    );
                }
            }
        }
    }

    #[test]
    fn dense_batch_matches_naive() {
        check_batch(StridedBatch::dense(8, 8, 8, 10), 1);
        check_batch(StridedBatch::dense(5, 7, 3, 4), 1);
    }

    #[test]
    fn strided_batch_with_gaps() {
        let mut d = StridedBatch::dense(6, 5, 4, 3);
        d.lda = 8;
        d.stride_a = 64;
        d.ldc = 9;
        d.stride_c = 64;
        check_batch(d, 1);
    }

    #[test]
    fn threaded_batch_matches_naive() {
        check_batch(StridedBatch::dense(8, 8, 8, 17), 4);
        check_batch(StridedBatch::dense(12, 4, 16, 5), 8);
    }

    #[test]
    fn untouched_padding_between_entries() {
        let d = {
            let mut d = StridedBatch::dense(4, 4, 4, 2);
            d.stride_c = 32; // 16 elements of padding per entry
            d
        };
        let a = fill(d.batch * d.stride_a + 64, 1);
        let b = fill(d.batch * d.stride_b + 64, 2);
        let mut c = vec![7.0f32; d.batch * d.stride_c + 64];
        let smm = Smm::<f32>::new();
        smm.gemm_strided_batch(d, 1.0, &a, &b, 0.0, &mut c);
        // Padding region of entry 0 untouched.
        for x in &c[16..32] {
            assert_eq!(*x, 7.0);
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let smm = Smm::<f32>::new();
        let mut c = vec![1.0f32; 4];
        smm.gemm_strided_batch(StridedBatch::dense(2, 2, 2, 0), 1.0, &[], &[], 0.0, &mut c);
        assert_eq!(c, vec![1.0; 4]);
    }

    #[test]
    fn k_zero_scales_every_entry() {
        let d = StridedBatch::dense(2, 2, 0, 3);
        let smm = Smm::<f32>::new();
        let mut c = vec![4.0f32; 3 * d.stride_c.max(4)];
        smm.gemm_strided_batch(d, 1.0, &[], &[], 0.25, &mut c);
        assert_eq!(c[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "C buffer too short")]
    fn short_c_rejected() {
        let d = StridedBatch::dense(4, 4, 4, 4);
        let smm = Smm::<f32>::new();
        let a = vec![0.0f32; 256];
        let b = vec![0.0f32; 256];
        let mut c = vec![0.0f32; 20];
        smm.gemm_strided_batch(d, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_strides_rejected() {
        let mut d = StridedBatch::dense(4, 4, 4, 2);
        d.stride_c = 8; // < ldc * n
        let smm = Smm::<f32>::new();
        let a = vec![0.0f32; 64];
        let b = vec![0.0f32; 64];
        let mut c = vec![0.0f32; 64];
        smm.gemm_strided_batch(d, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn try_new_accepts_valid_geometry() {
        let d = StridedBatch::try_new(4, 5, 6, 3, 4, 24, 6, 30, 4, 20).unwrap();
        assert_eq!(d.batch, 3);
        check_batch(d, 2);
    }

    #[test]
    fn try_new_rejects_small_leading_dim() {
        let err = StridedBatch::try_new(4, 4, 4, 2, 3, 16, 4, 16, 4, 16).unwrap_err();
        assert_eq!(
            err,
            SmmError::BadLeadingDim {
                operand: Operand::A,
                ld: 3,
                min: 4
            }
        );
    }

    #[test]
    fn try_new_rejects_overlapping_stride() {
        let err = StridedBatch::try_new(4, 4, 4, 2, 4, 15, 4, 16, 4, 16).unwrap_err();
        assert_eq!(
            err,
            SmmError::OverlappingStride {
                operand: Operand::A,
                stride: 15,
                min: 16
            }
        );
        let err = StridedBatch::try_new(4, 4, 4, 2, 4, 16, 4, 16, 4, 10).unwrap_err();
        assert!(err.to_string().contains("C matrices overlap"));
    }

    #[test]
    fn gemm_batch_reports_short_buffers_as_errors() {
        let d = StridedBatch::dense(4, 4, 4, 4);
        let smm = Smm::<f32>::new();
        let a = vec![0.0f32; 256];
        let b = vec![0.0f32; 256];
        let mut c = vec![0.0f32; 20];
        let err = smm.gemm_batch(&d, 1.0, &a, &b, 0.0, &mut c).unwrap_err();
        assert_eq!(
            err,
            SmmError::BufferTooShort {
                operand: Operand::C,
                len: 20,
                need: 64
            }
        );
        // Nothing was written before the error.
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gemm_batch_ok_on_valid_input() {
        let d = StridedBatch::dense(6, 6, 6, 9);
        let a = fill(d.batch * d.stride_a, 1);
        let b = fill(d.batch * d.stride_b, 2);
        let mut c = vec![0.0f32; d.batch * d.stride_c];
        let smm = Smm::<f32>::with_threads(4);
        smm.gemm_batch(&d, 1.0, &a, &b, 0.0, &mut c).unwrap();
        let ar = MatRef::from_slice(&a, d.m, d.k, d.lda);
        let br = MatRef::from_slice(&b, d.k, d.n, d.ldb);
        let mut want = Mat::<f32>::zeros(d.m, d.n);
        gemm_naive(1.0, ar, br, 0.0, want.as_mut());
        for col in 0..d.n {
            for r in 0..d.m {
                assert!((c[col * d.ldc + r] - want[(r, col)]).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn k_zero_is_a_pure_beta_scale_with_gapped_ldc() {
        // k == 0 must touch only the m x n window of each entry, even
        // with a padded leading dimension and inter-entry gaps.
        let d = StridedBatch::try_new(2, 3, 0, 2, 2, 0, 1, 3, 4, 16).unwrap();
        let smm = Smm::<f32>::new();
        let mut c = vec![2.0f32; 16 + 4 * 3];
        smm.gemm_batch(&d, 1.0, &[], &[], 0.25, &mut c).unwrap();
        for i in 0..d.batch {
            for col in 0..d.n {
                for r in 0..d.ldc {
                    let got = c[i * d.stride_c + col * d.ldc + r];
                    let want = if r < d.m { 0.5 } else { 2.0 };
                    assert_eq!(got, want, "entry {i} ({r},{col})");
                }
            }
        }
    }

    #[test]
    fn batch_of_one_takes_the_fast_path_on_a_threaded_pool() {
        // A single-entry batch must not fan out across workers and must
        // agree with both the naive oracle and plain gemm.
        let d = StridedBatch::dense(7, 5, 9, 1);
        let a = fill(d.stride_a, 21);
        let b = fill(d.stride_b, 22);
        let c0 = fill(d.stride_c, 23);
        let smm = Smm::<f32>::with_threads(4);
        let mut c_batch = c0.clone();
        smm.gemm_batch(&d, 2.0, &a, &b, 0.5, &mut c_batch).unwrap();
        let mut want = Mat::<f32>::from_fn(d.m, d.n, |r, col| c0[col * d.ldc + r]);
        gemm_naive(
            2.0,
            MatRef::from_slice(&a, d.m, d.k, d.lda),
            MatRef::from_slice(&b, d.k, d.n, d.ldb),
            0.5,
            want.as_mut(),
        );
        let mut c_gemm = c0.clone();
        smm.gemm(
            2.0,
            MatRef::from_slice(&a, d.m, d.k, d.lda),
            MatRef::from_slice(&b, d.k, d.n, d.ldb),
            0.5,
            MatMut::from_slice(&mut c_gemm, d.m, d.n, d.ldc),
        );
        for col in 0..d.n {
            for r in 0..d.m {
                let got = c_batch[col * d.ldc + r];
                assert!(
                    (got - want[(r, col)]).abs() < 1e-3,
                    "vs naive at ({r},{col}): {got} vs {}",
                    want[(r, col)]
                );
                let via_gemm = c_gemm[col * d.ldc + r];
                assert!(
                    (got - via_gemm).abs() < 1e-3,
                    "vs gemm at ({r},{col}): {got} vs {via_gemm}"
                );
            }
        }
    }

    #[test]
    fn try_new_rejects_overlap_per_operand() {
        // Each operand reports its own exact OverlappingStride variant.
        let err = StridedBatch::try_new(4, 4, 4, 2, 4, 16, 4, 11, 4, 16).unwrap_err();
        assert_eq!(
            err,
            SmmError::OverlappingStride {
                operand: Operand::B,
                stride: 11,
                min: 16
            }
        );
        let err = StridedBatch::try_new(4, 4, 4, 2, 4, 16, 4, 16, 4, 9).unwrap_err();
        assert_eq!(
            err,
            SmmError::OverlappingStride {
                operand: Operand::C,
                stride: 9,
                min: 16
            }
        );
        // Zero-width operands need no spacing: stride 0 is legal when
        // the operand itself is empty (k == 0 for A, n == 0 for B/C).
        assert!(StridedBatch::try_new(4, 0, 0, 2, 4, 0, 1, 0, 4, 0).is_ok());
    }
}
