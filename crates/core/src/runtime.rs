//! Persistent SMM runtime: sharded plan cache and runtime statistics.
//!
//! Small-matrix workloads call GEMM millions of times over a handful of
//! distinct shapes (§I of the paper), so the per-call fixed costs —
//! planning and thread startup — dominate unless they are amortized.
//! The runtime amortizes both:
//!
//! * plans are memoized in a [`ShardedPlanCache`]: shape keys hash to
//!   one of [`SHARDS`] independent `RwLock`ed maps, so the steady-state
//!   path (cache hit) takes only a shared lock on one shard and
//!   concurrent callers on different shapes almost never contend;
//! * execution is submitted to a persistent [`TaskPool`] (re-exported
//!   from `smm-gemm`) whose workers are spawned once and parked between
//!   calls — no `thread::spawn` on the GEMM hot path.
//!
//! [`RuntimeStats`] exposes hit/miss/eviction counters so the
//! amortization claim is observable rather than assumed.

use std::collections::HashMap;
use std::sync::Arc;

use smm_sync::sync::atomic::{AtomicU64, Ordering};
use smm_sync::sync::RwLock;

use crate::plan::{PlanConfig, SmmPlan};

pub use smm_gemm::pool::{PoolStats, TaskPool};

/// Number of independently locked shards. A power of two so the shard
/// index is a mask; 16 is plenty for the thread counts the paper's
/// Phytium 2000+ study targets per NUMA node.
pub const SHARDS: usize = 16;

/// Default total plan capacity of a [`ShardedPlanCache`].
pub const DEFAULT_PLAN_CAPACITY: usize = 1024;

/// Snapshot of runtime counters, returned by [`crate::Smm::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Plan-cache lookups that found an existing plan.
    pub plan_hits: u64,
    /// Plan-cache lookups that had to build a plan.
    pub plan_misses: u64,
    /// Plans dropped because a shard reached its capacity.
    pub plan_evictions: u64,
    /// Plans currently resident across all shards.
    pub cached_plans: usize,
    /// Worker threads of the pool backing this instance.
    pub pool_workers: usize,
}

fn shard_of(key: (usize, usize, usize)) -> usize {
    // Fibonacci-hash the shape so that near-identical shapes (the
    // common case in sweeps) spread across shards.
    let h = key
        .0
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(key.1.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(key.2.wrapping_mul(0x1656_67B1_9E37_79F9));
    (h >> 48) & (SHARDS - 1)
}

type Shard = RwLock<HashMap<(usize, usize, usize), Arc<SmmPlan>>>;

/// Read-mostly memoization of [`SmmPlan`]s keyed by `(m, n, k)`.
///
/// Lookups take a shared (read) lock on one shard only; plan
/// construction happens outside any lock, and the insert double-checks
/// so concurrent misses on the same shape converge on one plan.
pub struct ShardedPlanCache {
    shards: [Shard; SHARDS],
    /// Per-shard entry cap (0 = unbounded).
    shard_capacity: usize,
    /// Cache statistics; relaxed — independent monotonic counters
    /// bumped outside the shard locks and read only for reporting.
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedPlanCache {
    /// Cache bounded to roughly `capacity` plans in total
    /// (`capacity == 0` means unbounded).
    ///
    /// Bounded shards pre-allocate to their cap so a fill-up never
    /// rehashes mid-request: the resize spikes land exactly in the
    /// cold-start tail the serving layer gates on.
    pub fn new(capacity: usize) -> Self {
        let shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(SHARDS)
        };
        ShardedPlanCache {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::with_capacity(shard_capacity))),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The plan for `(m, n, k)`, building it with `cfg` on a miss.
    pub fn get_or_build(&self, m: usize, n: usize, k: usize, cfg: &PlanConfig) -> Arc<SmmPlan> {
        self.get_or_insert_with(m, n, k, || SmmPlan::build(m, n, k, cfg))
    }

    /// The plan for `(m, n, k)`, calling `build` on a miss. The general
    /// entry point behind [`Self::get_or_build`]: the two-stage tuner
    /// supplies database-derived plans through the same cache, so the
    /// steady-state hit path is identical no matter where a plan came
    /// from.
    pub fn get_or_insert_with(
        &self,
        m: usize,
        n: usize,
        k: usize,
        build: impl FnOnce() -> SmmPlan,
    ) -> Arc<SmmPlan> {
        let key = (m, n, k);
        let shard = &self.shards[shard_of(key)];
        if let Some(plan) = shard.read().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Build outside the lock: planning may simulate candidate
        // kernels and must not serialize other shapes' lookups.
        let built = Arc::new(build());
        let mut map = shard.write().unwrap();
        if let Some(plan) = map.get(&key) {
            // A concurrent miss won the race; adopt its plan.
            return Arc::clone(plan);
        }
        if self.shard_capacity != 0 && map.len() >= self.shard_capacity {
            // Arbitrary eviction: SMM workloads cycle over few shapes,
            // so anything resident beyond capacity is equally cold.
            if let Some(&victim) = map.keys().next() {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(key, Arc::clone(&built));
        built
    }

    /// Plans currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap().clear();
        }
    }

    /// Counter snapshot, with `pool_workers` filled in by the caller.
    pub fn stats(&self, pool_workers: usize) -> RuntimeStats {
        RuntimeStats {
            plan_hits: self.hits.load(Ordering::Relaxed),
            plan_misses: self.misses.load(Ordering::Relaxed),
            plan_evictions: self.evictions.load(Ordering::Relaxed),
            cached_plans: self.len(),
            pool_workers,
        }
    }
}

impl Default for ShardedPlanCache {
    fn default() -> Self {
        Self::new(DEFAULT_PLAN_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_same_plan() {
        let cache = ShardedPlanCache::default();
        let cfg = PlanConfig::default();
        let a = cache.get_or_build(8, 8, 8, &cfg);
        let b = cache.get_or_build(8, 8, 8, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats(0);
        assert_eq!(s.plan_hits, 1);
        assert_eq!(s.plan_misses, 1);
        assert_eq!(s.cached_plans, 1);
    }

    #[test]
    fn distinct_shapes_are_distinct_entries() {
        let cache = ShardedPlanCache::default();
        let cfg = PlanConfig::default();
        cache.get_or_build(4, 4, 4, &cfg);
        cache.get_or_build(4, 4, 5, &cfg);
        cache.get_or_build(5, 4, 4, &cfg);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(0).plan_misses, 3);
    }

    #[test]
    fn capacity_bounds_residency() {
        // capacity 16 → 1 entry per shard; far more shapes than that.
        let cache = ShardedPlanCache::new(16);
        let cfg = PlanConfig::default();
        for m in 1..=40 {
            cache.get_or_build(m, 3, 3, &cfg);
        }
        assert!(cache.len() <= SHARDS, "len {} > {}", cache.len(), SHARDS);
        let s = cache.stats(0);
        assert_eq!(s.plan_misses, 40);
        assert_eq!(s.plan_evictions as usize + cache.len(), 40);
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let cache = ShardedPlanCache::new(0);
        let cfg = PlanConfig::default();
        for m in 1..=40 {
            cache.get_or_build(m, 3, 3, &cfg);
        }
        assert_eq!(cache.len(), 40);
        assert_eq!(cache.stats(0).plan_evictions, 0);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = ShardedPlanCache::default();
        let cfg = PlanConfig::default();
        cache.get_or_build(6, 6, 6, &cfg);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(0).plan_misses, 1);
    }

    #[test]
    fn concurrent_misses_converge() {
        let cache = Arc::new(ShardedPlanCache::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                cache.get_or_build(12, 12, 12, &PlanConfig::default())
            }));
        }
        let plans: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for p in &plans[1..] {
            assert!(Arc::ptr_eq(&plans[0], p));
        }
        assert_eq!(cache.len(), 1);
        let s = cache.stats(0);
        assert_eq!(s.plan_hits + s.plan_misses, 8);
    }

    #[test]
    fn shard_of_is_in_range_and_spreads() {
        let mut seen = std::collections::HashSet::new();
        for m in 0..64usize {
            let s = shard_of((m, m + 1, m + 2));
            assert!(s < SHARDS);
            seen.insert(s);
        }
        assert!(seen.len() > SHARDS / 2, "only {} shards used", seen.len());
    }
}
