//! Simulation programs for the reference SMM implementation.
//!
//! Builds the macro-op program an [`SmmPlan`] executes, so the §IV
//! design can be compared against the four libraries on the simulated
//! Phytium 2000+ in the figure harness and the ablation benches.

use smm_gemm::parallel::split_ranges;
use smm_gemm::sim::{GemmLayout, MacroOp, PackAPanelOp, PackBSliverOp, SimJob, ELEM};
use smm_kernels::descriptor::{BLoadStyle, MicroKernelDesc, SchedulePolicy};
use smm_kernels::trace_gen::KernelTraceParams;
use smm_simarch::phase::Phase;

use crate::plan::SmmPlan;

/// Build the simulation job for a plan.
pub fn build_sim(plan: &SmmPlan) -> SimJob {
    let (m, n, k) = (plan.m, plan.n, plan.k);
    let mut lay = GemmLayout::for_threads(m, n, k, plan.threads());
    let threads = plan.threads();
    let (mr, nr) = (plan.kernel.mr, plan.kernel.nr);

    let m_chunks = split_ranges(plan.m_tiles.len(), plan.grid.m_ways());
    let n_chunks = split_ranges(plan.n_tiles.len(), plan.grid.n_ways());

    // Per-thread private packing buffers on the local NUMA panel.
    let bufsize = ((n + nr) * plan.kc + (mr + 16) * plan.kc) as u64 * ELEM;
    let bufs: Vec<u64> = (0..threads).map(|t| lay.alloc_local(bufsize, t)).collect();

    let mut progs: Vec<Vec<MacroOp>> = vec![Vec::new(); threads];
    let mut t = 0;
    for &(ms, mc) in &m_chunks {
        for &(ns, nc) in &n_chunks {
            if t >= threads {
                break;
            }
            let prog = &mut progs[t];
            // Plan-dispatch overhead: the cached-plan lookup plus tile
            // table walk (the cost LIBXSMM pays as JIT dispatch).
            prog.push(MacroOp::Iops {
                n: 50,
                phase: Phase::Overhead,
            });
            if mc == 0 || nc == 0 {
                t += 1;
                continue;
            }
            let m_tiles = &plan.m_tiles[ms..ms + mc];
            let n_tiles = &plan.n_tiles[ns..ns + nc];
            let bpack_base = bufs[t];
            let apack_base = bufs[t] + ((n + nr) * plan.kc) as u64 * ELEM;

            let mut kk = 0;
            while kk < k {
                let kc = plan.kc.min(k - kk);
                // B packing decisions per sliver.
                let mut b_off = Vec::with_capacity(n_tiles.len());
                let mut packed = Vec::with_capacity(n_tiles.len());
                let mut off = 0u64;
                for jt in n_tiles {
                    let edge = jt.logical < nr;
                    let do_pack = plan.pack_b || (edge && plan.pack_edge_b);
                    packed.push(do_pack);
                    b_off.push(off);
                    if do_pack {
                        prog.push(MacroOp::PackB(PackBSliverOp {
                            src: lay.b_addr(kk, jt.offset),
                            ldb: lay.ldb,
                            kc,
                            cols: jt.logical,
                            pad_to: jt.logical,
                            dst: bpack_base + off,
                            phase: Phase::PackB,
                            src_row_major: false,
                        }));
                        off += (jt.logical * kc) as u64 * ELEM;
                    }
                }
                for it in m_tiles {
                    // Packed A panels round rows up to a full vector.
                    let lanes = plan.isa.lanes_f32();
                    let padded = it.logical.div_ceil(lanes) * lanes;
                    let (a_base, a_kstep) = if plan.pack_a {
                        prog.push(MacroOp::PackA(PackAPanelOp {
                            src: lay.a_addr(it.offset, kk),
                            lda: lay.lda,
                            rows: it.logical,
                            kc,
                            pad_to: padded,
                            dst: apack_base,
                            phase: Phase::PackA,
                            src_row_major: false,
                        }));
                        (apack_base, padded as u64 * ELEM)
                    } else {
                        (lay.a_addr(it.offset, kk), lay.lda)
                    };
                    for (s, jt) in n_tiles.iter().enumerate() {
                        let is_main = it.logical == mr && jt.logical == nr;
                        let desc = MicroKernelDesc::for_isa(
                            plan.isa,
                            it.logical,
                            jt.logical,
                            4,
                            SchedulePolicy::Interleaved,
                            BLoadStyle::ScalarPairs,
                        );
                        let (b_base, b_kstep, b_jstride) = if packed[s] {
                            (bpack_base + b_off[s], (jt.logical as u64) * ELEM, ELEM)
                        } else {
                            (lay.b_addr(kk, jt.offset), ELEM, lay.ldb)
                        };
                        prog.push(MacroOp::Kernel(KernelTraceParams {
                            desc,
                            kc,
                            a_base,
                            a_kstep,
                            b_base,
                            b_kstep,
                            b_jstride,
                            c_base: lay.c_addr(it.offset, jt.offset),
                            c_col_stride: lay.ldc,
                            elem: ELEM,
                            phase: if is_main { Phase::Kernel } else { Phase::Edge },
                        }));
                    }
                }
                kk += kc;
            }
            t += 1;
        }
    }

    SimJob {
        programs: progs,
        useful_flops: plan.flops(),
        label: format!(
            "SMM-Ref {m}x{n}x{k} t{threads} packA={} packB={}",
            plan.pack_a, plan.pack_b
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanConfig, SmmPlan};

    #[test]
    fn sim_runs_and_counts_flops() {
        let plan = SmmPlan::build(32, 32, 32, &PlanConfig::default());
        let report = build_sim(&plan).run();
        assert!(report.total_fmas() > 0);
        assert!(report.cycles > 0);
    }

    #[test]
    fn packing_optional_small_m_has_no_pack_phase() {
        let plan = SmmPlan::build(8, 64, 32, &PlanConfig::default());
        assert!(!plan.pack_b);
        let report = build_sim(&plan).run();
        let b = report.total_breakdown();
        assert_eq!(b.get(Phase::PackA), 0);
        // Only edge slivers may be packed; N=64 with nr | 64 has none.
        if plan.n.is_multiple_of(plan.kernel.nr) {
            assert_eq!(b.get(Phase::PackB), 0);
        }
    }

    #[test]
    fn reference_beats_openblas_on_small_m() {
        use smm_gemm::{OpenBlasStrategy, Strategy};
        // Small M: packing dominates OpenBLAS (§III-A); the reference
        // implementation skips it.
        let plan = SmmPlan::build(6, 96, 96, &PlanConfig::default());
        let ours = build_sim(&plan).run();
        let ob = Strategy::<f32>::sim(&OpenBlasStrategy::new(), 6, 96, 96, 1).run();
        assert!(
            ours.cycles < ob.cycles,
            "SMM-Ref {} cycles vs OpenBLAS {}",
            ours.cycles,
            ob.cycles
        );
    }

    #[test]
    fn multithreaded_sim_has_no_barriers() {
        let cfg = PlanConfig {
            max_threads: 8,
            ..Default::default()
        };
        let plan = SmmPlan::build(64, 96, 32, &cfg);
        assert!(plan.threads() > 1);
        let job = build_sim(&plan);
        for prog in &job.programs {
            assert!(!prog.iter().any(|op| matches!(op, MacroOp::Barrier { .. })));
        }
        let report = job.run();
        assert_eq!(report.total_breakdown().get(Phase::Sync), 0);
    }

    #[test]
    fn sve_plan_simulates_predicated_edges_end_to_end() {
        use smm_kernels::trace_gen::kernel_trace;
        use smm_model::VectorIsa;
        use smm_simarch::isa::Op;
        let cfg = PlanConfig {
            isa: VectorIsa::sve256(),
            ..Default::default()
        };
        // 75 % mr != 0 for every candidate mr, so the program must
        // contain masked-edge kernels rather than a greedy cascade.
        let plan = SmmPlan::build(75, 33, 64, &cfg);
        let job = build_sim(&plan);
        let predicated = job.programs[0].iter().any(|op| match op {
            MacroOp::Kernel(p) => kernel_trace(p).0.iter().any(|i| i.op == Op::LdVecPred),
            _ => false,
        });
        assert!(predicated, "SVE plan should emit predicated edge loads");
        let report = job.run();
        assert!(report.total_fmas() > 0);
        assert!(report.cycles > 0);
    }

    #[test]
    fn edge_slivers_are_packed_when_enabled() {
        let cfg = PlanConfig {
            pack_b: Some(false),
            ..Default::default()
        };
        let plan = SmmPlan::build(16, 13, 16, &cfg);
        let job = build_sim(&plan);
        let packs = job.programs[0]
            .iter()
            .filter(|op| matches!(op, MacroOp::PackB(_)))
            .count();
        assert!(
            packs > 0,
            "the 13 % nr edge sliver should be packed (Fig. 8)"
        );
    }
}
