//! Windowed rate estimators: req/s, Gflops/s, and p99 trend over a
//! sliding window of latency samples.
//!
//! Aggregate histograms (ROADMAP items 2/4's inputs) answer "what has
//! this process done since start"; an online dispatcher needs "what is
//! happening *right now*, and which way is it moving". This module
//! keeps a ring of `RATE_SLOTS` time slots, each a small bundle of
//! relaxed atomics (request count, flops, latency sum, and a compact
//! log2 latency histogram). A slot is lazily recycled when the wall
//! clock enters its index again one window later, so there is no
//! ticker thread and no lock.
//!
//! The module itself never reads a clock: callers (telemetry's
//! `record_call`, which is already inside the clock fence) pass
//! `now_ns` relative to their own epoch. Disabled-telemetry runtimes
//! never call in, so the zero-overhead discipline of the recorder is
//! preserved.
//!
//! The p99 *trend* is the first derivative of the per-slot p99 series,
//! estimated with a least-squares linear fit over the window — for the
//! default window of 5+ evenly spaced samples this is exactly the
//! Savitzky–Golay first-derivative filter (window 5, coefficients
//! (−2,−1,0,1,2)/10), the shape the dataplane exemplar's
//! `stats/src/rate.rs` uses.

use smm_sync::sync::atomic::{AtomicU64, Ordering};

/// Number of time slots in the sliding window.
pub const RATE_SLOTS: usize = 8;

/// Buckets of each slot's compact log2 latency histogram (same
/// bucketing as `LatencyHistogram`: bucket `i` holds `[2^i, 2^(i+1))`).
pub const RATE_BUCKETS: usize = 40;

/// Slot index marking a never-used slot.
const EMPTY: u64 = u64::MAX;

fn bucket_index(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize)
        .saturating_sub(1)
        .min(RATE_BUCKETS - 1)
}

fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// One time slot of the window.
// Lazily-recycled relaxed counters: `epoch` holds the absolute slot
// index the counters belong to; the first recorder to enter a new
// index wins a Relaxed CAS and zeroes the counters. All increments are
// Relaxed — a handful of samples may land across a recycle boundary,
// which only blurs one slot edge of an estimator that is statistical
// by construction.
struct RateSlot {
    epoch: AtomicU64,
    count: AtomicU64,
    flops: AtomicU64,
    sum_ns: AtomicU64,
    hist: [AtomicU64; RATE_BUCKETS],
}

impl RateSlot {
    fn new() -> Self {
        RateSlot {
            epoch: AtomicU64::new(EMPTY),
            count: AtomicU64::new(0),
            flops: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn clear(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.flops.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        for b in &self.hist {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Upper bound of the bucket containing the q-quantile.
    fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let target = ((count as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.hist.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(RATE_BUCKETS - 1)
    }
}

/// A sliding window of [`RATE_SLOTS`] time slots over caller-supplied
/// timestamps.
pub struct RateWindow {
    slot_ns: u64,
    slots: Vec<RateSlot>,
}

/// Point-in-time view of the window, exposed via `TelemetryReport`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RateReport {
    /// Configured window length in seconds.
    pub window_secs: f64,
    /// Seconds of the window actually covered by live slots.
    pub covered_secs: f64,
    /// Requests per second over the covered span (batch members count
    /// individually).
    pub req_per_sec: f64,
    /// Achieved Gflops/s over the covered span.
    pub gflops_per_sec: f64,
    /// Mean call latency over the covered span, nanoseconds.
    pub mean_ns: u64,
    /// p99 of the newest live slot, nanoseconds.
    pub p99_now_ns: u64,
    /// First derivative of the per-slot p99 series (ns per second);
    /// positive means tail latency is trending up right now.
    pub p99_trend_ns_per_sec: f64,
    /// Live slots the estimates were computed from.
    pub live_slots: usize,
}

impl RateWindow {
    /// A window spanning `window_ns` nanoseconds, split into
    /// [`RATE_SLOTS`] slots (slot width is at least 1 ms).
    pub fn new(window_ns: u64) -> Self {
        RateWindow {
            slot_ns: (window_ns / RATE_SLOTS as u64).max(1_000_000),
            slots: (0..RATE_SLOTS).map(|_| RateSlot::new()).collect(),
        }
    }

    /// Record one call finishing at `now_ns` (caller's epoch-relative
    /// clock): `entries` requests, `flops` floating-point ops, and the
    /// call's total latency. Every one of the `entries` requests is
    /// taken to have experienced the call's full latency (a coalesced
    /// batch replies to all its members at once), so latency tallies —
    /// sum and histogram — are entry-weighted to match `count`;
    /// otherwise batched calls would leave the quantile target beyond
    /// the histogram mass and the p99 would saturate at the top bucket.
    pub fn record(&self, now_ns: u64, entries: u64, flops: u64, total_ns: u64) {
        let idx = now_ns / self.slot_ns;
        let slot = &self.slots[(idx as usize) % RATE_SLOTS];
        let cur = slot.epoch.load(Ordering::Relaxed);
        if cur != idx {
            // First arrival in a recycled slot zeroes it (see the
            // RateSlot ordering note for the boundary-blur tradeoff).
            if slot
                .epoch
                .compare_exchange(cur, idx, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                slot.clear();
            }
        }
        slot.count.fetch_add(entries, Ordering::Relaxed);
        slot.flops.fetch_add(flops, Ordering::Relaxed);
        slot.sum_ns
            .fetch_add(total_ns.saturating_mul(entries), Ordering::Relaxed);
        slot.hist[bucket_index(total_ns)].fetch_add(entries, Ordering::Relaxed);
    }

    /// Snapshot the window as of `now_ns` (same clock as `record`).
    pub fn report(&self, now_ns: u64) -> RateReport {
        let cur_idx = now_ns / self.slot_ns;
        let oldest_live = (cur_idx + 1).saturating_sub(RATE_SLOTS as u64);
        // Live slots in epoch order, oldest first.
        let mut live: Vec<&RateSlot> = self
            .slots
            .iter()
            .filter(|s| {
                let e = s.epoch.load(Ordering::Relaxed);
                e != EMPTY && e >= oldest_live && e <= cur_idx
            })
            .collect();
        live.sort_by_key(|s| s.epoch.load(Ordering::Relaxed));

        let window_secs = self.slot_ns as f64 * RATE_SLOTS as f64 / 1e9;
        if live.is_empty() {
            return RateReport {
                window_secs,
                ..Default::default()
            };
        }
        let oldest_epoch = live[0].epoch.load(Ordering::Relaxed);
        // Covered span: from the start of the oldest live slot to now.
        let covered_secs =
            ((cur_idx - oldest_epoch) * self.slot_ns + now_ns % self.slot_ns) as f64 / 1e9;
        let covered_secs = covered_secs.max(self.slot_ns as f64 / 1e9 / RATE_SLOTS as f64);

        let count: u64 = live.iter().map(|s| s.count.load(Ordering::Relaxed)).sum();
        let flops: u64 = live.iter().map(|s| s.flops.load(Ordering::Relaxed)).sum();
        let sum_ns: u64 = live.iter().map(|s| s.sum_ns.load(Ordering::Relaxed)).sum();

        let p99s: Vec<f64> = live.iter().map(|s| s.quantile_ns(0.99) as f64).collect();
        let slot_secs = self.slot_ns as f64 / 1e9;
        RateReport {
            window_secs,
            covered_secs,
            req_per_sec: count as f64 / covered_secs,
            gflops_per_sec: flops as f64 / covered_secs / 1e9,
            mean_ns: sum_ns.checked_div(count).unwrap_or(0),
            p99_now_ns: live.last().map_or(0, |s| s.quantile_ns(0.99)),
            p99_trend_ns_per_sec: savitzky_golay_slope(&p99s) / slot_secs,
            live_slots: live.len(),
        }
    }
}

/// Least-squares slope of evenly spaced samples (per-sample units).
///
/// For an odd window this is exactly the Savitzky–Golay first-derivative
/// convolution — e.g. window 5 reduces to coefficients
/// `(−2,−1,0,1,2)/10` — but the closed form works for any length ≥ 2.
pub fn savitzky_golay_slope(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 0.0;
    }
    let x_mean = (n as f64 - 1.0) / 2.0;
    let y_mean = samples.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in samples.iter().enumerate() {
        let dx = i as f64 - x_mean;
        num += dx * (y - y_mean);
        den += dx * dx;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_matches_savitzky_golay_window5() {
        // SG-5 first derivative: sum(c_i * y_i) with c = (-2,-1,0,1,2)/10.
        let ys = [3.0, 7.0, 4.0, 9.0, 12.0];
        let sg: f64 = [-2.0, -1.0, 0.0, 1.0, 2.0]
            .iter()
            .zip(&ys)
            .map(|(c, y)| c / 10.0 * y)
            .sum();
        assert!((savitzky_golay_slope(&ys) - sg).abs() < 1e-12);
        // Exact on linear data, zero on constants, robust on degenerates.
        let lin: Vec<f64> = (0..7).map(|i| 5.0 + 2.5 * i as f64).collect();
        assert!((savitzky_golay_slope(&lin) - 2.5).abs() < 1e-12);
        assert_eq!(savitzky_golay_slope(&[4.0; 6]), 0.0);
        assert_eq!(savitzky_golay_slope(&[1.0]), 0.0);
        assert_eq!(savitzky_golay_slope(&[]), 0.0);
    }

    #[test]
    fn rates_over_a_synthetic_window() {
        let w = RateWindow::new(8_000_000); // 1ms slots (clamped floor)
        let slot = 1_000_000u64;
        // 4 slots: 10 requests each, latency rising 1000 -> 4000 ns.
        for s in 0..4u64 {
            for r in 0..10u64 {
                let flops = 2 * 8 * 8 * 8;
                w.record(s * slot + r * 1000, 1, flops, (s + 1) * 1000);
            }
        }
        let now = 3 * slot + 500_000; // halfway through slot 3
        let rep = w.report(now);
        assert_eq!(rep.live_slots, 4);
        let covered = (3.0 * slot as f64 + 500_000.0) / 1e9;
        assert!((rep.covered_secs - covered).abs() < 1e-12);
        assert!((rep.req_per_sec - 40.0 / covered).abs() < 1e-6);
        let gf = (40 * 2 * 8 * 8 * 8) as f64 / covered / 1e9;
        assert!((rep.gflops_per_sec - gf).abs() < 1e-9);
        assert_eq!(rep.mean_ns, (1000 + 2000 + 3000 + 4000) * 10 / 40);
        // Latency rising monotonically => positive trend, and p99_now
        // reflects the newest slot's (log2 upper bound of) 4000 ns.
        assert!(rep.p99_trend_ns_per_sec > 0.0);
        assert_eq!(rep.p99_now_ns, (1u64 << 12) - 1);
    }

    #[test]
    fn stale_slots_fall_out_and_recycle() {
        let w = RateWindow::new(8_000_000);
        let slot = 1_000_000u64;
        w.record(0, 5, 0, 100);
        assert!(w.report(0).req_per_sec > 0.0);
        // One full window later the epoch-0 slot is stale...
        let later = slot * (RATE_SLOTS as u64 + 2);
        let rep = w.report(later);
        assert_eq!(rep.live_slots, 0);
        assert_eq!(rep.req_per_sec, 0.0);
        // ...and recording there recycles it with fresh counters.
        w.record(later, 1, 0, 100);
        assert!(w.report(later).req_per_sec > 0.0);
        let rep2 = w.report(later);
        assert_eq!(rep2.live_slots, 1);
        assert!((rep2.req_per_sec * rep2.covered_secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batched_records_keep_quantiles_inside_the_histogram() {
        // Regression: a coalesced batch records once with entries > 1.
        // The quantile target is count-based, so the histogram must be
        // entry-weighted too or p99 saturates at the top bucket.
        let w = RateWindow::new(8_000_000);
        w.record(0, 16, 0, 1000);
        let rep = w.report(0);
        assert_eq!(rep.p99_now_ns, (1u64 << 10) - 1, "p99 escaped its bucket");
        assert_eq!(rep.mean_ns, 1000);
        assert!((rep.req_per_sec * rep.covered_secs - 16.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_reports_zeros() {
        let w = RateWindow::new(1_000_000_000);
        let rep = w.report(5_000_000);
        assert_eq!(rep.live_slots, 0);
        assert_eq!(rep.req_per_sec, 0.0);
        assert_eq!(rep.p99_trend_ns_per_sec, 0.0);
        assert!((rep.window_secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample_trend_is_flat() {
        let w = RateWindow::new(8_000_000);
        w.record(500, 1, 1000, 2000);
        let rep = w.report(500);
        assert_eq!(rep.live_slots, 1);
        // One p99 sample gives the fit nothing to differentiate: the
        // trend must be exactly zero, not NaN or a degenerate slope.
        assert_eq!(rep.p99_trend_ns_per_sec, 0.0);
        // And the covered span is floored, so the rates stay finite
        // even when "now" is at the very start of the first slot.
        assert!(rep.covered_secs > 0.0);
        assert!(rep.req_per_sec.is_finite() && rep.req_per_sec > 0.0);
    }

    #[test]
    fn saturating_latency_lands_in_the_top_bucket() {
        let w = RateWindow::new(8_000_000);
        // A u64::MAX latency must clamp into the last histogram bucket
        // (not index past it), and the entry-weighted latency sum must
        // saturate instead of wrapping to a tiny mean.
        w.record(0, 2, 0, u64::MAX);
        let rep = w.report(0);
        assert_eq!(rep.p99_now_ns, bucket_upper_bound(RATE_BUCKETS - 1));
        assert_eq!(rep.mean_ns, u64::MAX / 2);
    }

    #[test]
    fn slot_reuse_one_window_later_resets_counters() {
        let w = RateWindow::new(8_000_000);
        let slot = 1_000_000u64;
        w.record(0, 10, 0, 100);
        // Exactly one window later the ring index wraps back onto the
        // epoch-0 slot: the first recorder there must win the epoch
        // CAS and zero the counters, not inherit the stale 10.
        let wrapped = slot * RATE_SLOTS as u64;
        w.record(wrapped, 1, 0, 100);
        let rep = w.report(wrapped);
        assert_eq!(rep.live_slots, 1);
        assert!(
            (rep.req_per_sec * rep.covered_secs - 1.0).abs() < 1e-9,
            "stale epoch-0 counters leaked into the recycled slot: {rep:?}"
        );
    }
}
