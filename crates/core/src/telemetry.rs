//! Phase-level telemetry for the SMM runtime.
//!
//! The paper's method is *measurement decomposition*: the P2C ratio of
//! §III-A (Eqs. 1–3) splits run time into packing vs. computing, Table
//! II breaks parallel overhead into packing and synchronization shares,
//! and Fig. 7 compares achieved kernel rates against the machine model.
//! This module makes the same decomposition observable on our own hot
//! path:
//!
//! * every GEMM call's lifecycle is tagged with [`Phase`] spans — plan
//!   lookup, A/B packing, kernel compute, pool dispatch, and
//!   barrier/reduce — timed in nanoseconds and accumulated into
//!   hand-rolled log2-bucket [`LatencyHistogram`]s;
//! * recording goes through per-thread *shards* of relaxed atomics
//!   (a thread-local slot index picks the shard), so the enabled hot
//!   path takes no locks and concurrent recorders do not contend;
//! * per-shape throughput is accumulated in a fixed-size lock-free
//!   open-addressing table so a snapshot can compare achieved Gflops
//!   against the `smm-model` prediction for every shape seen;
//! * [`Telemetry::report`] aggregates the shards into a
//!   [`TelemetryReport`] with the derived paper metrics — observed P2C,
//!   model efficiency fractions, and a Table-II-style
//!   pack/compute/sync percentage breakdown per call site — and the
//!   report serializes to JSON text or a Prometheus-style exposition.
//!
//! Everything is `std`-only: no external metric crates, no global
//! registries. A [`Telemetry`] instance belongs to one
//! [`crate::Smm`]; the disabled state is a single branch per call.

use std::time::{Duration, Instant};

use smm_sync::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use smm_gemm::arena::ArenaStats;
use smm_gemm::pool::PoolStats;
use smm_model::{p2c_as_published, MachineSpec, Precision};

use crate::plan::choose_kernel;
use crate::rate::{RateReport, RateWindow};
use crate::runtime::RuntimeStats;
use crate::trace::TraceExemplar;
use crate::tune::TunerStats;

/// Default sliding window of the rate estimators (see [`crate::rate`]).
pub const DEFAULT_RATE_WINDOW: Duration = Duration::from_secs(8);

/// Number of log2 latency buckets. Bucket `i` covers `[2^i, 2^(i+1))`
/// nanoseconds (bucket 0 covers `[0, 2)`); the last bucket saturates,
/// so 40 buckets reach ~2^40 ns ≈ 18 minutes before saturation.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Number of per-thread shards (a power of two; thread slots wrap).
const SHARDS: usize = 16;

/// Capacity of the lock-free per-shape table.
const SHAPE_SLOTS: usize = 256;

/// FMA latency (cycles) used for the model's chain-bound prediction,
/// matching the planner's constant.
const FMA_LATENCY: usize = 5;

/// A lifecycle phase of one GEMM call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Plan-cache lookup (or miss-path plan construction).
    PlanLookup,
    /// Packing `A` panels.
    PackA,
    /// Packing `B` slivers (including Fig. 8 edge packing).
    PackB,
    /// Micro-kernel execution.
    Compute,
    /// Pool dispatch: queue push, wakeup, and the workers' execution
    /// window of one multi-threaded call (submission to last result).
    Dispatch,
    /// Synchronization: barrier wait beyond the slowest worker's busy
    /// time, plus the reduce/merge of private blocks and `beta` scaling.
    Sync,
    /// Serving layer: time a request sat in the admission queue before
    /// the dispatcher picked it up.
    EnqueueWait,
    /// Serving layer: the shape-coalescing window — time the dispatcher
    /// held a group open waiting for more same-shape arrivals.
    Coalesce,
    /// Serving layer: answering requests after compute (copy-out of
    /// `C` windows plus waking the submitters).
    Reply,
}

/// Number of distinct [`Phase`] values.
pub const NUM_PHASES: usize = 9;

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::PlanLookup,
        Phase::PackA,
        Phase::PackB,
        Phase::Compute,
        Phase::Dispatch,
        Phase::Sync,
        Phase::EnqueueWait,
        Phase::Coalesce,
        Phase::Reply,
    ];

    /// Stable snake_case name (used as the metric label).
    pub fn name(self) -> &'static str {
        match self {
            Phase::PlanLookup => "plan_lookup",
            Phase::PackA => "pack_a",
            Phase::PackB => "pack_b",
            Phase::Compute => "compute",
            Phase::Dispatch => "dispatch",
            Phase::Sync => "sync",
            Phase::EnqueueWait => "enqueue_wait",
            Phase::Coalesce => "coalesce",
            Phase::Reply => "reply",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::PlanLookup => 0,
            Phase::PackA => 1,
            Phase::PackB => 2,
            Phase::Compute => 3,
            Phase::Dispatch => 4,
            Phase::Sync => 5,
            Phase::EnqueueWait => 6,
            Phase::Coalesce => 7,
            Phase::Reply => 8,
        }
    }
}

/// The public API entry a span was recorded under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallSite {
    /// [`crate::Smm::gemm`] — single GEMM.
    Gemm,
    /// [`crate::Smm::gemm_batch`] / `gemm_strided_batch`.
    GemmBatch,
    /// Direct [`crate::execute`]-style invocations.
    Direct,
    /// The `smm-serve` request dispatcher (queue wait, coalescing,
    /// batched dispatch, and reply — the service-boundary spans).
    Serve,
}

/// Number of distinct [`CallSite`] values.
pub const NUM_SITES: usize = 4;

impl CallSite {
    /// All call sites, in display order.
    pub const ALL: [CallSite; NUM_SITES] = [
        CallSite::Gemm,
        CallSite::GemmBatch,
        CallSite::Direct,
        CallSite::Serve,
    ];

    /// Stable snake_case name (used as the metric label).
    pub fn name(self) -> &'static str {
        match self {
            CallSite::Gemm => "gemm",
            CallSite::GemmBatch => "gemm_batch",
            CallSite::Direct => "direct",
            CallSite::Serve => "serve",
        }
    }

    fn index(self) -> usize {
        match self {
            CallSite::Gemm => 0,
            CallSite::GemmBatch => 1,
            CallSite::Direct => 2,
            CallSite::Serve => 3,
        }
    }
}

/// A log2-bucketed latency histogram (plain, non-atomic form).
///
/// This is the aggregation/snapshot type: shards are merged into it and
/// tests drive it directly. Bucket `i` counts samples in
/// `[2^i, 2^(i+1))` ns, except bucket 0 (`[0, 2)`) and the last bucket,
/// which absorbs everything at or above its lower bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (ns).
    pub sum_ns: u64,
    /// Smallest recorded value (0 when empty).
    pub min_ns: u64,
    /// Largest recorded value (0 when empty).
    pub max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
        }
    }

    /// Bucket index for a value: `floor(log2(ns))`, clamped to the
    /// table ([0, 2) ns collapses into bucket 0; the last bucket
    /// saturates).
    pub fn bucket_index(ns: u64) -> usize {
        if ns < 2 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of a bucket (`u64::MAX` for the saturated
    /// last bucket).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        assert!(i < HISTOGRAM_BUCKETS, "bucket out of range");
        if i == HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Merge another histogram (shard aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        for (b, ob) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += ob;
        }
        if self.count == 0 {
            self.min_ns = other.min_ns;
            self.max_ns = other.max_ns;
        } else {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Quantile estimate: the upper bound of the first bucket whose
    /// cumulative count reaches `q · count`, clamped to the observed
    /// `[min_ns, max_ns]` range. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_upper_bound(i).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Mean recorded value in ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// One per-thread shard of relaxed atomics, cache-line separated so
/// concurrent recorders on different shards never false-share.
#[repr(align(128))]
struct Shard {
    hist: [[AtomicU64; HISTOGRAM_BUCKETS]; NUM_PHASES],
    phase_ns: [AtomicU64; NUM_PHASES],
    phase_count: [AtomicU64; NUM_PHASES],
    phase_min: [AtomicU64; NUM_PHASES],
    phase_max: [AtomicU64; NUM_PHASES],
    site_phase_ns: [[AtomicU64; NUM_PHASES]; NUM_SITES],
    site_calls: [AtomicU64; NUM_SITES],
    packed_bytes: AtomicU64,
    flops: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            hist: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            phase_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_count: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_min: std::array::from_fn(|_| AtomicU64::new(u64::MAX)),
            phase_max: std::array::from_fn(|_| AtomicU64::new(0)),
            site_phase_ns: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            site_calls: std::array::from_fn(|_| AtomicU64::new(0)),
            packed_bytes: AtomicU64::new(0),
            flops: AtomicU64::new(0),
        }
    }
}

/// Lock-free per-shape accumulator slot states.
const SLOT_EMPTY: usize = 0;
const SLOT_CLAIMED: usize = 1;
const SLOT_READY: usize = 2;

/// One open-addressing slot of the shape table. Writers claim an empty
/// slot with a CAS, publish the key with a release store, and from then
/// on only relaxed counter adds touch the slot.
struct ShapeSlot {
    state: AtomicUsize,
    m: AtomicUsize,
    n: AtomicUsize,
    k: AtomicUsize,
    elem_bytes: AtomicUsize,
    calls: AtomicU64,
    total_ns: AtomicU64,
}

impl ShapeSlot {
    fn new() -> Self {
        ShapeSlot {
            state: AtomicUsize::new(SLOT_EMPTY),
            m: AtomicUsize::new(0),
            n: AtomicUsize::new(0),
            k: AtomicUsize::new(0),
            elem_bytes: AtomicUsize::new(0),
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }

    fn matches(&self, m: usize, n: usize, k: usize, elem: usize) -> bool {
        self.m.load(Ordering::Relaxed) == m
            && self.n.load(Ordering::Relaxed) == n
            && self.k.load(Ordering::Relaxed) == k
            && self.elem_bytes.load(Ordering::Relaxed) == elem
    }

    fn bump(&self, calls: u64, ns: u64) {
        self.calls.fetch_add(calls, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// Thread-slot allocator; relaxed — a monotonic counter whose only
/// contract is distinctness, with no ordering against any other access.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Monotonic per-thread slot; masked into a shard index. Threads
    /// keep their slot for life, so a thread always writes one shard.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// Read the clock iff `timed` (`None` otherwise) — the guard for timed
/// paths that run outside a [`Recorder`] (pooled worker closures), so
/// untimed hot paths provably never reach `Instant::now`.
pub fn now_if(timed: bool) -> Option<Instant> {
    timed.then(Instant::now)
}

/// The telemetry registry of one [`crate::Smm`] instance.
///
/// All recording is wait-free on the enabled path: a thread-local shard
/// pick plus relaxed `fetch_add`s. When constructed disabled, every
/// recording call is a single branch.
pub struct Telemetry {
    enabled: bool,
    /// Zero point for windowed rate accounting. Read (via `elapsed`)
    /// only on the enabled path — the disabled registry never touches
    /// the clock.
    epoch: Instant,
    rate: RateWindow,
    shards: Vec<Shard>,
    slots: Vec<ShapeSlot>,
    /// Shapes discarded once `slots` filled; relaxed counter add, read
    /// only by the aggregating reporter after recording has quiesced.
    dropped_shapes: AtomicU64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl Telemetry {
    /// A registry; `enabled == false` turns every record into a no-op.
    pub fn new(enabled: bool) -> Self {
        Self::with_rate_window(enabled, DEFAULT_RATE_WINDOW)
    }

    /// A registry whose rate estimators slide over `window`.
    pub fn with_rate_window(enabled: bool, window: Duration) -> Self {
        Telemetry {
            enabled,
            epoch: Instant::now(),
            rate: RateWindow::new(window.as_nanos().min(u64::MAX as u128) as u64),
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            slots: (0..SHAPE_SLOTS).map(|_| ShapeSlot::new()).collect(),
            dropped_shapes: AtomicU64::new(0),
        }
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// A recording handle bound to a call site. Inactive (all no-ops)
    /// when the registry is disabled.
    pub fn recorder(&self, site: CallSite) -> Recorder<'_> {
        Recorder {
            tel: if self.enabled { Some(self) } else { None },
            site,
        }
    }

    fn shard(&self) -> &Shard {
        let slot = THREAD_SLOT.with(|s| *s);
        &self.shards[slot & (SHARDS - 1)]
    }

    pub(crate) fn record_span(&self, site: CallSite, phase: Phase, ns: u64) {
        let shard = self.shard();
        let p = phase.index();
        shard.hist[p][LatencyHistogram::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        shard.phase_ns[p].fetch_add(ns, Ordering::Relaxed);
        shard.phase_count[p].fetch_add(1, Ordering::Relaxed);
        shard.phase_min[p].fetch_min(ns, Ordering::Relaxed);
        shard.phase_max[p].fetch_max(ns, Ordering::Relaxed);
        shard.site_phase_ns[site.index()][p].fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn add_packed_bytes(&self, bytes: u64) {
        if bytes > 0 {
            self.shard()
                .packed_bytes
                .fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Account one completed API call: `entries` GEMMs of shape
    /// `(m, n, k)` over `elem_bytes`-wide scalars took `total_ns`
    /// end to end.
    ///
    /// Public so out-of-crate layers (the `smm-serve` dispatcher) can
    /// feed the per-shape table; this bypasses the [`Recorder`] gate,
    /// so callers must check [`Telemetry::enabled`] themselves.
    #[allow(clippy::too_many_arguments)]
    pub fn record_call(
        &self,
        site: CallSite,
        m: usize,
        n: usize,
        k: usize,
        elem_bytes: usize,
        entries: u64,
        total_ns: u64,
    ) {
        let shard = self.shard();
        shard.site_calls[site.index()].fetch_add(1, Ordering::Relaxed);
        let flops = 2 * (m as u64) * (n as u64) * (k as u64) * entries;
        shard.flops.fetch_add(flops, Ordering::Relaxed);
        if self.enabled {
            // Rate ticks need a wall-clock sample; keep the disabled
            // registry clock-free even through this bypass path.
            self.rate.record(self.epoch_ns(), entries, flops, total_ns);
        }
        self.record_shape(m, n, k, elem_bytes, entries, total_ns);
    }

    /// Nanoseconds since this registry's construction — the time base
    /// of its [`RateWindow`].
    pub fn epoch_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn record_shape(&self, m: usize, n: usize, k: usize, elem: usize, entries: u64, ns: u64) {
        let h = m
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(n.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add(k.wrapping_mul(0x1656_67B1_9E37_79F9))
            .wrapping_add(elem);
        for probe in 0..SHAPE_SLOTS {
            let slot = &self.slots[(h + probe) & (SHAPE_SLOTS - 1)];
            match slot.state.load(Ordering::Acquire) {
                SLOT_READY if slot.matches(m, n, k, elem) => {
                    slot.bump(entries, ns);
                    return;
                }
                SLOT_EMPTY => {
                    match slot.state.compare_exchange(
                        SLOT_EMPTY,
                        SLOT_CLAIMED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            slot.m.store(m, Ordering::Relaxed);
                            slot.n.store(n, Ordering::Relaxed);
                            slot.k.store(k, Ordering::Relaxed);
                            slot.elem_bytes.store(elem, Ordering::Relaxed);
                            slot.state.store(SLOT_READY, Ordering::Release);
                            slot.bump(entries, ns);
                            return;
                        }
                        Err(SLOT_READY) => {
                            if slot.matches(m, n, k, elem) {
                                slot.bump(entries, ns);
                                return;
                            }
                        }
                        // Claimed by a concurrent inserter whose key we
                        // cannot read yet: probe on. A racing insert of
                        // the same shape may land in two slots; the
                        // snapshot merges duplicates by key.
                        Err(_) => {}
                    }
                }
                // SLOT_CLAIMED: key not yet published; probe on.
                _ => {}
            }
        }
        self.dropped_shapes.fetch_add(entries, Ordering::Relaxed);
    }

    /// Aggregate every shard and the shape table into a report.
    ///
    /// `runtime`, `pool`, and `arena` snapshots are provided by the
    /// owning [`crate::Smm`] so the report is one self-contained
    /// document.
    pub fn report(
        &self,
        runtime: RuntimeStats,
        pool: PoolStats,
        arena: ArenaStats,
    ) -> TelemetryReport {
        let mut phases: Vec<PhaseReport> = Phase::ALL
            .iter()
            .map(|&p| PhaseReport {
                phase: p,
                histogram: LatencyHistogram::new(),
            })
            .collect();
        let mut site_phase_ns = [[0u64; NUM_PHASES]; NUM_SITES];
        let mut site_calls = [0u64; NUM_SITES];
        let mut packed_bytes = 0u64;
        let mut flops = 0u64;
        for shard in &self.shards {
            for (pi, pr) in phases.iter_mut().enumerate() {
                let count = shard.phase_count[pi].load(Ordering::Relaxed);
                if count == 0 {
                    continue;
                }
                let mut h = LatencyHistogram::new();
                for (bi, b) in h.buckets.iter_mut().enumerate() {
                    *b = shard.hist[pi][bi].load(Ordering::Relaxed);
                }
                h.count = count;
                h.sum_ns = shard.phase_ns[pi].load(Ordering::Relaxed);
                h.min_ns = shard.phase_min[pi].load(Ordering::Relaxed);
                h.max_ns = shard.phase_max[pi].load(Ordering::Relaxed);
                pr.histogram.merge(&h);
            }
            for (si, row) in site_phase_ns.iter_mut().enumerate() {
                for (pi, cell) in row.iter_mut().enumerate() {
                    *cell += shard.site_phase_ns[si][pi].load(Ordering::Relaxed);
                }
                site_calls[si] += shard.site_calls[si].load(Ordering::Relaxed);
            }
            packed_bytes += shard.packed_bytes.load(Ordering::Relaxed);
            flops += shard.flops.load(Ordering::Relaxed);
        }

        let sites: Vec<SiteBreakdown> = CallSite::ALL
            .iter()
            .map(|&s| {
                let row = &site_phase_ns[s.index()];
                SiteBreakdown::from_phase_ns(s, site_calls[s.index()], row)
            })
            .collect();

        // Merge shape slots (duplicates from racing inserts collapse).
        let mut merged: Vec<ShapeReport> = Vec::new();
        for slot in &self.slots {
            if slot.state.load(Ordering::Acquire) != SLOT_READY {
                continue;
            }
            let (m, n, k, elem) = (
                slot.m.load(Ordering::Relaxed),
                slot.n.load(Ordering::Relaxed),
                slot.k.load(Ordering::Relaxed),
                slot.elem_bytes.load(Ordering::Relaxed),
            );
            let calls = slot.calls.load(Ordering::Relaxed);
            let total_ns = slot.total_ns.load(Ordering::Relaxed);
            if calls == 0 {
                continue;
            }
            if let Some(existing) = merged
                .iter_mut()
                .find(|r| r.m == m && r.n == n && r.k == k && r.elem_bytes == elem)
            {
                existing.calls += calls;
                existing.total_ns += total_ns;
            } else {
                merged.push(ShapeReport {
                    m,
                    n,
                    k,
                    elem_bytes: elem,
                    calls,
                    total_ns,
                    achieved_gflops: 0.0,
                    predicted_gflops: 0.0,
                    model_fraction: 0.0,
                    p2c: 0.0,
                });
            }
        }
        let spec = MachineSpec::phytium_2000_plus();
        for r in &mut merged {
            let prec = if r.elem_bytes == 8 {
                Precision::F64
            } else {
                Precision::F32
            };
            let flops_shape = 2.0 * r.m as f64 * r.n as f64 * r.k as f64 * r.calls as f64;
            r.achieved_gflops = if r.total_ns > 0 {
                flops_shape / r.total_ns as f64
            } else {
                0.0
            };
            let kernel = choose_kernel(r.m, r.n, r.k);
            let eff = kernel.chain_bound_efficiency(spec.lanes(prec), FMA_LATENCY);
            r.predicted_gflops = eff * spec.peak_gflops(prec, 1);
            r.model_fraction = if r.predicted_gflops > 0.0 {
                r.achieved_gflops / r.predicted_gflops
            } else {
                0.0
            };
            r.p2c = p2c_as_published(r.m, r.n);
        }
        merged.sort_by(|a, b| b.calls.cmp(&a.calls).then(b.total_ns.cmp(&a.total_ns)));

        // Observed P2C with the paper's Eq. 1/2 widths: packed vector
        // loads (one per SIMD register of packed bytes) over FMA
        // instructions (one per `fma_width` MACs).
        let observed_p2c = if flops > 0 {
            let loads = packed_bytes as f64 / spec.simd_bytes as f64;
            let fmas = (flops as f64 / 2.0) / spec.fma_width(Precision::F32) as f64;
            loads / fmas
        } else {
            0.0
        };

        TelemetryReport {
            enabled: self.enabled,
            runtime,
            pool,
            arena,
            phases,
            sites,
            shapes: merged,
            packed_bytes,
            flops,
            observed_p2c,
            rate: self.rate.report(self.epoch_ns()),
            slow: Vec::new(),
            dropped_shapes: self.dropped_shapes.load(Ordering::Relaxed),
            tuner: TunerStats::default(),
        }
    }

    /// Observed traffic per shape from the lock-free shape table:
    /// `((m, n, k), calls)` pairs for every ready slot. This is what
    /// [`crate::Smm::flush_plan_db`] folds into the plan database so
    /// shape popularity survives restarts and drives pre-warming.
    pub fn shape_calls(&self) -> Vec<((usize, usize, usize), u64)> {
        let mut out: Vec<((usize, usize, usize), u64)> = Vec::new();
        for slot in &self.slots {
            if slot.state.load(Ordering::Acquire) != SLOT_READY {
                continue;
            }
            let key = (
                slot.m.load(Ordering::Relaxed),
                slot.n.load(Ordering::Relaxed),
                slot.k.load(Ordering::Relaxed),
            );
            let calls = slot.calls.load(Ordering::Relaxed);
            if calls == 0 {
                continue;
            }
            // Duplicate slots from racing inserts collapse here, same
            // as in `report`.
            if let Some(existing) = out.iter_mut().find(|(k2, _)| *k2 == key) {
                existing.1 += calls;
            } else {
                out.push((key, calls));
            }
        }
        out
    }
}

/// A copyable recording handle bound to one call site.
///
/// The inactive handle ([`Recorder::none`] or a disabled registry) does
/// not read the clock and performs no atomic operations.
#[derive(Clone, Copy)]
pub struct Recorder<'a> {
    tel: Option<&'a Telemetry>,
    site: CallSite,
}

impl<'a> Recorder<'a> {
    /// A handle that records nothing.
    pub fn none() -> Self {
        Recorder {
            tel: None,
            site: CallSite::Direct,
        }
    }

    /// Whether this handle records.
    pub fn active(&self) -> bool {
        self.tel.is_some()
    }

    /// Read the clock iff recording (`None` otherwise) — the inactive
    /// hot path must not pay for `Instant::now`.
    pub fn now(&self) -> Option<Instant> {
        self.tel.map(|_| Instant::now())
    }

    /// Record the span from `start` (a [`Recorder::now`] result) to the
    /// present; returns the span length in ns (0 when inactive).
    pub fn span_since(&self, phase: Phase, start: Option<Instant>) -> u64 {
        match (self.tel, start) {
            (Some(tel), Some(t0)) => {
                let ns = t0.elapsed().as_nanos() as u64;
                tel.record_span(self.site, phase, ns);
                ns
            }
            _ => 0,
        }
    }

    /// Record a span of known length.
    pub fn span_ns(&self, phase: Phase, ns: u64) {
        if let Some(tel) = self.tel {
            tel.record_span(self.site, phase, ns);
        }
    }

    /// Account bytes written by packing.
    pub fn packed_bytes(&self, bytes: u64) {
        if let Some(tel) = self.tel {
            tel.add_packed_bytes(bytes);
        }
    }
}

impl std::fmt::Debug for Recorder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("active", &self.active())
            .field("site", &self.site.name())
            .finish()
    }
}

/// Latency histogram of one phase, with derived quantiles.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// The phase.
    pub phase: Phase,
    /// Merged histogram across all shards.
    pub histogram: LatencyHistogram,
}

/// Table-II-style overhead breakdown for one call site.
#[derive(Debug, Clone)]
pub struct SiteBreakdown {
    /// The call site.
    pub site: CallSite,
    /// API calls recorded at this site (one batched call counts once).
    pub calls: u64,
    /// Accumulated ns per phase (indexed like [`Phase::ALL`]).
    pub phase_ns: [u64; NUM_PHASES],
    /// Packing share of pack+compute+sync time, in percent.
    pub pack_pct: f64,
    /// Compute share, in percent.
    pub compute_pct: f64,
    /// Synchronization share, in percent.
    pub sync_pct: f64,
}

impl SiteBreakdown {
    fn from_phase_ns(site: CallSite, calls: u64, phase_ns: &[u64; NUM_PHASES]) -> Self {
        let pack = phase_ns[Phase::PackA.index()] + phase_ns[Phase::PackB.index()];
        let compute = phase_ns[Phase::Compute.index()];
        let sync = phase_ns[Phase::Sync.index()];
        let total = (pack + compute + sync) as f64;
        let pct = |x: u64| {
            if total > 0.0 {
                x as f64 / total * 100.0
            } else {
                0.0
            }
        };
        SiteBreakdown {
            site,
            calls,
            phase_ns: *phase_ns,
            pack_pct: pct(pack),
            compute_pct: pct(compute),
            sync_pct: pct(sync),
        }
    }
}

/// Per-shape achieved throughput against the machine model.
#[derive(Debug, Clone)]
pub struct ShapeReport {
    /// Rows of `A`/`C`.
    pub m: usize,
    /// Columns of `B`/`C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Scalar width in bytes (4 = f32, 8 = f64).
    pub elem_bytes: usize,
    /// GEMMs executed on this shape (batch entries count individually).
    pub calls: u64,
    /// Accumulated end-to-end wall time.
    pub total_ns: u64,
    /// Achieved Gflops/s (`2mnk · calls / total_ns`).
    pub achieved_gflops: f64,
    /// `smm-model` single-core prediction: chain-bound efficiency of
    /// the adaptively chosen kernel × Phytium 2000+ one-core peak.
    pub predicted_gflops: f64,
    /// `achieved / predicted` (the Fig. 7 efficiency-gap view).
    pub model_fraction: f64,
    /// The paper's Eq. 3 P2C for the shape.
    pub p2c: f64,
}

/// A full snapshot of telemetry, runtime, and pool state.
///
/// Serializable to JSON ([`TelemetryReport::to_json`]) and to a
/// Prometheus-style text exposition
/// ([`TelemetryReport::to_prometheus`]); `Display` renders a compact
/// human-readable summary.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Whether the source registry was recording.
    pub enabled: bool,
    /// Plan-cache counters of the owning `Smm`.
    pub runtime: RuntimeStats,
    /// Worker-pool counters.
    pub pool: PoolStats,
    /// Packing-arena counters (hits, misses, allocated bytes): a
    /// warmed-up steady state shows hits climbing while misses and
    /// `alloc_bytes` stay flat — the zero-allocation evidence.
    pub arena: ArenaStats,
    /// Per-phase latency histograms.
    pub phases: Vec<PhaseReport>,
    /// Per-call-site overhead breakdowns.
    pub sites: Vec<SiteBreakdown>,
    /// Per-shape throughput vs. model, sorted by call count.
    pub shapes: Vec<ShapeReport>,
    /// Total bytes written by packing.
    pub packed_bytes: u64,
    /// Total useful flops (`2mnk` per GEMM).
    pub flops: u64,
    /// Observed packing-to-computing ratio (Eq. 1/Eq. 2 with measured
    /// packed bytes and executed flops).
    pub observed_p2c: f64,
    /// Windowed rate estimators (req/s, Gflops/s, p99 trend) over the
    /// registry's sliding window.
    pub rate: RateReport,
    /// Worst-K slow-request exemplars (filled by the owning `Smm` from
    /// its tracer; empty when tracing is off or nothing breached).
    pub slow: Vec<TraceExemplar>,
    /// Shape records dropped because the shape table was full.
    pub dropped_shapes: u64,
    /// Two-stage tuner counters (database hits, nearest-neighbor
    /// matches, online refinements, delta persistence; filled by the
    /// owning `Smm`, zero when no plan database is loaded).
    pub tuner: TunerStats,
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

impl TelemetryReport {
    /// Total recorded span count of a phase.
    pub fn phase_count(&self, phase: Phase) -> u64 {
        self.phases[phase.index()].histogram.count
    }

    /// Total recorded ns of a phase.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phases[phase.index()].histogram.sum_ns
    }

    /// The breakdown row of one call site.
    pub fn site(&self, site: CallSite) -> &SiteBreakdown {
        &self.sites[site.index()]
    }

    /// Serialize to a self-contained JSON document (std-only writer;
    /// histogram buckets are emitted sparsely as `[upper_bound, count]`
    /// pairs).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"enabled\": {},\n", self.enabled));
        s.push_str(&format!(
            "  \"runtime\": {{\"plan_hits\": {}, \"plan_misses\": {}, \"plan_evictions\": {}, \"cached_plans\": {}, \"pool_workers\": {}}},\n",
            self.runtime.plan_hits,
            self.runtime.plan_misses,
            self.runtime.plan_evictions,
            self.runtime.cached_plans,
            self.runtime.pool_workers
        ));
        s.push_str(&format!(
            "  \"pool\": {{\"workers\": {}, \"queue_highwater\": {}, \"worker_wakeups\": {}, \"worker_tasks\": {}, \"inline_drained\": {}, \"park_ns\": {}, \"scoped_calls\": {}}},\n",
            self.pool.workers,
            self.pool.queue_highwater,
            self.pool.worker_wakeups,
            self.pool.worker_tasks,
            self.pool.inline_drained,
            self.pool.park_ns,
            self.pool.scoped_calls
        ));
        s.push_str(&format!(
            "  \"arena\": {{\"hits\": {}, \"misses\": {}, \"alloc_bytes\": {}, \"hit_rate\": {}}},\n",
            self.arena.hits,
            self.arena.misses,
            self.arena.alloc_bytes,
            json_f64(self.arena.hit_rate())
        ));
        s.push_str("  \"phases\": {\n");
        for (i, pr) in self.phases.iter().enumerate() {
            let h = &pr.histogram;
            s.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"buckets\": [",
                pr.phase.name(),
                h.count,
                h.sum_ns,
                h.min_ns,
                h.max_ns,
                json_f64(h.mean_ns()),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            ));
            let mut first = true;
            for (bi, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    s.push_str(", ");
                }
                first = false;
                s.push_str(&format!(
                    "[{}, {}]",
                    LatencyHistogram::bucket_upper_bound(bi),
                    c
                ));
            }
            s.push_str(if i + 1 < self.phases.len() {
                "]},\n"
            } else {
                "]}\n"
            });
        }
        s.push_str("  },\n");
        s.push_str("  \"sites\": {\n");
        for (i, sb) in self.sites.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {{\"calls\": {}, \"plan_ns\": {}, \"pack_a_ns\": {}, \"pack_b_ns\": {}, \"compute_ns\": {}, \"dispatch_ns\": {}, \"sync_ns\": {}, \"enqueue_wait_ns\": {}, \"coalesce_ns\": {}, \"reply_ns\": {}, \"pack_pct\": {}, \"compute_pct\": {}, \"sync_pct\": {}}}{}\n",
                sb.site.name(),
                sb.calls,
                sb.phase_ns[Phase::PlanLookup.index()],
                sb.phase_ns[Phase::PackA.index()],
                sb.phase_ns[Phase::PackB.index()],
                sb.phase_ns[Phase::Compute.index()],
                sb.phase_ns[Phase::Dispatch.index()],
                sb.phase_ns[Phase::Sync.index()],
                sb.phase_ns[Phase::EnqueueWait.index()],
                sb.phase_ns[Phase::Coalesce.index()],
                sb.phase_ns[Phase::Reply.index()],
                json_f64(sb.pack_pct),
                json_f64(sb.compute_pct),
                json_f64(sb.sync_pct),
                if i + 1 < self.sites.len() { "," } else { "" }
            ));
        }
        s.push_str("  },\n");
        s.push_str("  \"shapes\": [\n");
        for (i, r) in self.shapes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"m\": {}, \"n\": {}, \"k\": {}, \"elem_bytes\": {}, \"calls\": {}, \"total_ns\": {}, \"achieved_gflops\": {}, \"predicted_gflops\": {}, \"model_fraction\": {}, \"p2c\": {}}}{}\n",
                r.m,
                r.n,
                r.k,
                r.elem_bytes,
                r.calls,
                r.total_ns,
                json_f64(r.achieved_gflops),
                json_f64(r.predicted_gflops),
                json_f64(r.model_fraction),
                json_f64(r.p2c),
                if i + 1 < self.shapes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"rate\": {{\"window_secs\": {}, \"covered_secs\": {}, \"req_per_sec\": {}, \"gflops_per_sec\": {}, \"mean_ns\": {}, \"p99_now_ns\": {}, \"p99_trend_ns_per_sec\": {}, \"live_slots\": {}}},\n",
            json_f64(self.rate.window_secs),
            json_f64(self.rate.covered_secs),
            json_f64(self.rate.req_per_sec),
            json_f64(self.rate.gflops_per_sec),
            self.rate.mean_ns,
            self.rate.p99_now_ns,
            json_f64(self.rate.p99_trend_ns_per_sec),
            self.rate.live_slots
        ));
        s.push_str("  \"slow\": [\n");
        for (i, e) in self.slow.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"trace\": {}, \"total_ns\": {}, \"label\": \"{}\", \"spans\": [",
                e.trace,
                e.total_ns,
                e.label.replace('\\', "\\\\").replace('"', "\\\""),
            ));
            for (j, sp) in e.spans.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"name\": \"{}\", \"trace\": {}, \"span\": {}, \"parent\": {}, \"start_ns\": {}, \"dur_ns\": {}, \"tid\": {}, \"arg\": {}}}",
                    sp.name.name(),
                    sp.trace,
                    sp.span,
                    sp.parent,
                    sp.start_ns,
                    sp.dur_ns,
                    sp.tid,
                    sp.arg
                ));
            }
            s.push_str(if i + 1 < self.slow.len() {
                "]},\n"
            } else {
                "]}\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"packed_bytes\": {},\n", self.packed_bytes));
        s.push_str(&format!("  \"flops\": {},\n", self.flops));
        s.push_str(&format!(
            "  \"observed_p2c\": {},\n",
            json_f64(self.observed_p2c)
        ));
        s.push_str(&format!("  \"dropped_shapes\": {},\n", self.dropped_shapes));
        s.push_str(&format!(
            "  \"tuner\": {{\"db_entries\": {}, \"db_hits\": {}, \"nn_matches\": {}, \"online_refines\": {}, \"untuned_builds\": {}, \"pending_deltas\": {}, \"persisted_deltas\": {}, \"db_coverage\": {}}}\n",
            self.tuner.db_entries,
            self.tuner.db_hits,
            self.tuner.nn_matches,
            self.tuner.online_refines,
            self.tuner.untuned_builds,
            self.tuner.pending_deltas,
            self.tuner.persisted_deltas,
            json_f64(self.tuner.db_coverage())
        ));
        s.push_str("}\n");
        s
    }

    /// Serialize to a Prometheus text exposition (counter, gauge, and
    /// cumulative-histogram families under the `smm_` namespace).
    ///
    /// Histograms are emitted the way real scrapers expect them: every
    /// phase gets the *full* bucket ladder — one cumulative
    /// `_bucket{le=...}` series per boundary on every scrape, zero
    /// counts included, closed by `le="+Inf"` plus `_sum`/`_count` —
    /// so the label set is stable across scrapes and
    /// `histogram_quantile()` works. (An earlier revision elided
    /// zero-count buckets, which made bucket series flap in and out of
    /// existence between scrapes.) Each family carries its own
    /// `# TYPE` line naming the family exactly.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::with_capacity(16384);
        s.push_str("# HELP smm_phase_latency_ns Per-phase span latency in nanoseconds.\n");
        s.push_str("# TYPE smm_phase_latency_ns histogram\n");
        for pr in &self.phases {
            let h = &pr.histogram;
            let name = pr.phase.name();
            let mut cum = 0u64;
            for (bi, &c) in h.buckets.iter().enumerate() {
                cum += c;
                s.push_str(&format!(
                    "smm_phase_latency_ns_bucket{{phase=\"{name}\",le=\"{}\"}} {cum}\n",
                    LatencyHistogram::bucket_upper_bound(bi)
                ));
            }
            s.push_str(&format!(
                "smm_phase_latency_ns_bucket{{phase=\"{name}\",le=\"+Inf\"}} {}\n",
                h.count
            ));
            s.push_str(&format!(
                "smm_phase_latency_ns_sum{{phase=\"{name}\"}} {}\n",
                h.sum_ns
            ));
            s.push_str(&format!(
                "smm_phase_latency_ns_count{{phase=\"{name}\"}} {}\n",
                h.count
            ));
        }
        s.push_str("# TYPE smm_calls_total counter\n");
        for sb in &self.sites {
            s.push_str(&format!(
                "smm_calls_total{{site=\"{}\"}} {}\n",
                sb.site.name(),
                sb.calls
            ));
        }
        s.push_str("# TYPE smm_overhead_share_percent gauge\n");
        for sb in &self.sites {
            let name = sb.site.name();
            s.push_str(&format!(
                "smm_overhead_share_percent{{site=\"{name}\",component=\"pack\"}} {}\n",
                json_f64(sb.pack_pct)
            ));
            s.push_str(&format!(
                "smm_overhead_share_percent{{site=\"{name}\",component=\"compute\"}} {}\n",
                json_f64(sb.compute_pct)
            ));
            s.push_str(&format!(
                "smm_overhead_share_percent{{site=\"{name}\",component=\"sync\"}} {}\n",
                json_f64(sb.sync_pct)
            ));
        }
        s.push_str("# TYPE smm_shape_gflops gauge\n");
        for r in &self.shapes {
            s.push_str(&format!(
                "smm_shape_gflops{{m=\"{}\",n=\"{}\",k=\"{}\"}} {}\n",
                r.m,
                r.n,
                r.k,
                json_f64(r.achieved_gflops)
            ));
        }
        s.push_str("# TYPE smm_shape_model_fraction gauge\n");
        for r in &self.shapes {
            s.push_str(&format!(
                "smm_shape_model_fraction{{m=\"{}\",n=\"{}\",k=\"{}\"}} {}\n",
                r.m,
                r.n,
                r.k,
                json_f64(r.model_fraction)
            ));
        }
        // Each family below names its metric exactly in its own
        // `# TYPE` line — a TYPE header whose name does not match the
        // samples is malformed exposition and scrapers drop it.
        let counter = |s: &mut String, name: &str, v: u64| {
            s.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        };
        let gauge = |s: &mut String, name: &str, v: String| {
            s.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        };
        counter(&mut s, "smm_plan_cache_hits_total", self.runtime.plan_hits);
        counter(
            &mut s,
            "smm_plan_cache_misses_total",
            self.runtime.plan_misses,
        );
        counter(
            &mut s,
            "smm_plan_cache_evictions_total",
            self.runtime.plan_evictions,
        );
        gauge(
            &mut s,
            "smm_plan_cache_resident",
            self.runtime.cached_plans.to_string(),
        );
        gauge(&mut s, "smm_pool_workers", self.pool.workers.to_string());
        gauge(
            &mut s,
            "smm_pool_queue_highwater",
            self.pool.queue_highwater.to_string(),
        );
        counter(
            &mut s,
            "smm_pool_worker_wakeups_total",
            self.pool.worker_wakeups,
        );
        counter(
            &mut s,
            "smm_pool_worker_tasks_total",
            self.pool.worker_tasks,
        );
        counter(
            &mut s,
            "smm_pool_inline_drained_total",
            self.pool.inline_drained,
        );
        counter(&mut s, "smm_pool_park_ns_total", self.pool.park_ns);
        counter(
            &mut s,
            "smm_pool_scoped_calls_total",
            self.pool.scoped_calls,
        );
        counter(&mut s, "smm_arena_hits_total", self.arena.hits);
        counter(&mut s, "smm_arena_misses_total", self.arena.misses);
        counter(
            &mut s,
            "smm_arena_alloc_bytes_total",
            self.arena.alloc_bytes,
        );
        gauge(
            &mut s,
            "smm_arena_hit_rate",
            json_f64(self.arena.hit_rate()),
        );
        counter(&mut s, "smm_packed_bytes_total", self.packed_bytes);
        counter(&mut s, "smm_flops_total", self.flops);
        gauge(&mut s, "smm_observed_p2c", json_f64(self.observed_p2c));
        gauge(
            &mut s,
            "smm_rate_window_covered_secs",
            json_f64(self.rate.covered_secs),
        );
        gauge(
            &mut s,
            "smm_rate_req_per_sec",
            json_f64(self.rate.req_per_sec),
        );
        gauge(
            &mut s,
            "smm_rate_gflops_per_sec",
            json_f64(self.rate.gflops_per_sec),
        );
        gauge(
            &mut s,
            "smm_rate_p99_now_ns",
            self.rate.p99_now_ns.to_string(),
        );
        gauge(
            &mut s,
            "smm_rate_p99_trend_ns_per_sec",
            json_f64(self.rate.p99_trend_ns_per_sec),
        );
        gauge(&mut s, "smm_slow_exemplars", self.slow.len().to_string());
        counter(&mut s, "smm_dropped_shapes_total", self.dropped_shapes);
        counter(&mut s, "smm_tuner_db_hits_total", self.tuner.db_hits);
        counter(&mut s, "smm_tuner_nn_matches_total", self.tuner.nn_matches);
        counter(
            &mut s,
            "smm_tuner_online_refines_total",
            self.tuner.online_refines,
        );
        counter(
            &mut s,
            "smm_tuner_untuned_builds_total",
            self.tuner.untuned_builds,
        );
        counter(
            &mut s,
            "smm_tuner_persisted_deltas_total",
            self.tuner.persisted_deltas,
        );
        gauge(
            &mut s,
            "smm_tuner_db_entries",
            self.tuner.db_entries.to_string(),
        );
        gauge(
            &mut s,
            "smm_tuner_pending_deltas",
            self.tuner.pending_deltas.to_string(),
        );
        gauge(
            &mut s,
            "smm_tuner_db_coverage",
            json_f64(self.tuner.db_coverage()),
        );
        s
    }

    /// Fold `other` into `self`, producing the fleet-wide view of N
    /// independent runtime shards: counters and histograms sum, ratios
    /// are recomputed from the summed raw quantities, high-water marks
    /// take the max, and per-shape rows merge by shape key. This is
    /// what the sharded serving layer uses to aggregate per-shard
    /// [`TelemetryReport`]s into one report behind the `STATS` opcode.
    pub fn absorb(&mut self, other: &TelemetryReport) {
        self.enabled |= other.enabled;
        self.runtime.plan_hits += other.runtime.plan_hits;
        self.runtime.plan_misses += other.runtime.plan_misses;
        self.runtime.plan_evictions += other.runtime.plan_evictions;
        self.runtime.cached_plans += other.runtime.cached_plans;
        self.runtime.pool_workers += other.runtime.pool_workers;
        self.pool.workers += other.pool.workers;
        self.pool.queue_highwater = self.pool.queue_highwater.max(other.pool.queue_highwater);
        self.pool.worker_wakeups += other.pool.worker_wakeups;
        self.pool.worker_tasks += other.pool.worker_tasks;
        self.pool.inline_drained += other.pool.inline_drained;
        self.pool.park_ns += other.pool.park_ns;
        self.pool.scoped_calls += other.pool.scoped_calls;
        self.arena.hits += other.arena.hits;
        self.arena.misses += other.arena.misses;
        self.arena.alloc_bytes += other.arena.alloc_bytes;
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.histogram.merge(&theirs.histogram);
        }
        for (mine, theirs) in self.sites.iter_mut().zip(&other.sites) {
            let calls = mine.calls + theirs.calls;
            let mut phase_ns = mine.phase_ns;
            for (a, b) in phase_ns.iter_mut().zip(&theirs.phase_ns) {
                *a += b;
            }
            *mine = SiteBreakdown::from_phase_ns(mine.site, calls, &phase_ns);
        }
        for r in &other.shapes {
            let key = (r.m, r.n, r.k, r.elem_bytes);
            match self
                .shapes
                .iter_mut()
                .find(|s| (s.m, s.n, s.k, s.elem_bytes) == key)
            {
                Some(mine) => {
                    mine.calls += r.calls;
                    mine.total_ns += r.total_ns;
                    mine.achieved_gflops = if mine.total_ns > 0 {
                        (2 * mine.m * mine.n * mine.k) as f64 * mine.calls as f64
                            / mine.total_ns as f64
                    } else {
                        0.0
                    };
                    mine.model_fraction = if mine.predicted_gflops > 0.0 {
                        mine.achieved_gflops / mine.predicted_gflops
                    } else {
                        0.0
                    };
                }
                None => self.shapes.push(r.clone()),
            }
        }
        self.shapes.sort_by_key(|r| std::cmp::Reverse(r.calls));
        // Observed P2C is loads/fmas, both proportional to raw sums —
        // the merged ratio is the flops-weighted mean of the inputs.
        let (fa, fb) = (self.flops as f64, other.flops as f64);
        if fa + fb > 0.0 {
            self.observed_p2c = (self.observed_p2c * fa + other.observed_p2c * fb) / (fa + fb);
        }
        self.packed_bytes += other.packed_bytes;
        self.flops += other.flops;
        // Rates: throughput adds across shards; latency statistics are
        // request-weighted or pessimistic (max), never averaged blind.
        let (ra, rb) = (self.rate.req_per_sec, other.rate.req_per_sec);
        if ra + rb > 0.0 {
            self.rate.mean_ns = ((self.rate.mean_ns as f64 * ra + other.rate.mean_ns as f64 * rb)
                / (ra + rb)) as u64;
        }
        self.rate.req_per_sec += other.rate.req_per_sec;
        self.rate.gflops_per_sec += other.rate.gflops_per_sec;
        self.rate.window_secs = self.rate.window_secs.max(other.rate.window_secs);
        self.rate.covered_secs = self.rate.covered_secs.max(other.rate.covered_secs);
        self.rate.p99_now_ns = self.rate.p99_now_ns.max(other.rate.p99_now_ns);
        self.rate.p99_trend_ns_per_sec += other.rate.p99_trend_ns_per_sec;
        self.rate.live_slots = self.rate.live_slots.max(other.rate.live_slots);
        self.slow.extend(other.slow.iter().cloned());
        self.slow.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
        self.slow.truncate(8);
        self.dropped_shapes += other.dropped_shapes;
        self.tuner.db_entries += other.tuner.db_entries;
        self.tuner.db_hits += other.tuner.db_hits;
        self.tuner.nn_matches += other.tuner.nn_matches;
        self.tuner.online_refines += other.tuner.online_refines;
        self.tuner.untuned_builds += other.tuner.untuned_builds;
        self.tuner.pending_deltas += other.tuner.pending_deltas;
        self.tuner.persisted_deltas += other.tuner.persisted_deltas;
    }
}

impl std::fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "telemetry report ({})",
            if self.enabled { "enabled" } else { "disabled" }
        )?;
        writeln!(
            f,
            "  plans: {} hits / {} misses / {} evictions, {} resident; pool: {} workers, queue hw {}, {} wakeups, {} inline-drained",
            self.runtime.plan_hits,
            self.runtime.plan_misses,
            self.runtime.plan_evictions,
            self.runtime.cached_plans,
            self.pool.workers,
            self.pool.queue_highwater,
            self.pool.worker_wakeups,
            self.pool.inline_drained,
        )?;
        writeln!(
            f,
            "  arena: {} hits / {} misses ({:.2}% hit rate), {} bytes allocated",
            self.arena.hits,
            self.arena.misses,
            self.arena.hit_rate() * 100.0,
            self.arena.alloc_bytes,
        )?;
        writeln!(f, "  phase latency (ns):")?;
        for pr in &self.phases {
            let h = &pr.histogram;
            if h.count == 0 {
                continue;
            }
            writeln!(
                f,
                "    {:<12} n={:<9} mean={:<10.0} p50={:<8} p99={:<10} max={}",
                pr.phase.name(),
                h.count,
                h.mean_ns(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max_ns
            )?;
        }
        writeln!(
            f,
            "  overhead breakdown (pack/compute/sync, % of phase time):"
        )?;
        for sb in &self.sites {
            if sb.calls == 0 {
                continue;
            }
            writeln!(
                f,
                "    {:<12} calls={:<8} pack={:>5.1}%  compute={:>5.1}%  sync={:>5.1}%",
                sb.site.name(),
                sb.calls,
                sb.pack_pct,
                sb.compute_pct,
                sb.sync_pct
            )?;
        }
        writeln!(
            f,
            "  observed P2C = {:.4} ({} packed bytes / {} flops)",
            self.observed_p2c, self.packed_bytes, self.flops
        )?;
        if self.tuner.lookups() > 0 || self.tuner.db_entries > 0 {
            writeln!(
                f,
                "  tuner: {} db entries, {} db hits / {} nn matches / {} refines / {} untuned ({:.1}% db coverage), deltas {} pending / {} persisted",
                self.tuner.db_entries,
                self.tuner.db_hits,
                self.tuner.nn_matches,
                self.tuner.online_refines,
                self.tuner.untuned_builds,
                self.tuner.db_coverage() * 100.0,
                self.tuner.pending_deltas,
                self.tuner.persisted_deltas,
            )?;
        }
        writeln!(
            f,
            "  rate window ({:.1}s, {:.1}s covered): {:.1} req/s, {:.3} Gflops/s, p99 now {} ns, p99 trend {:+.0} ns/s",
            self.rate.window_secs,
            self.rate.covered_secs,
            self.rate.req_per_sec,
            self.rate.gflops_per_sec,
            self.rate.p99_now_ns,
            self.rate.p99_trend_ns_per_sec,
        )?;
        writeln!(f, "  shapes (achieved vs. model single-core prediction):")?;
        for r in self.shapes.iter().take(8) {
            writeln!(
                f,
                "    {:>4}x{:<4}x{:<5} calls={:<8} {:>8.3} Gflops vs {:>7.3} predicted ({:>5.1}% of model), P2C {:.3}",
                r.m,
                r.n,
                r.k,
                r.calls,
                r.achieved_gflops,
                r.predicted_gflops,
                r.model_fraction * 100.0,
                r.p2c
            )?;
        }
        if !self.slow.is_empty() {
            writeln!(f, "  slow-request exemplars (worst first):")?;
            for e in &self.slow {
                writeln!(
                    f,
                    "    trace {} [{}]: {} ns end-to-end, {} spans",
                    e.trace,
                    e.label,
                    e.total_ns,
                    e.spans.len()
                )?;
                // Indent children under their in-tree parent; parents
                // outside this trace (the coalesced-batch span) render
                // at the root level.
                for sp in &e.spans {
                    let depth = {
                        let mut d = 0usize;
                        let mut parent = sp.parent;
                        while parent != 0 && d < 8 {
                            match e.spans.iter().find(|c| c.span == parent) {
                                Some(p) => {
                                    d += 1;
                                    parent = p.parent;
                                }
                                None => break,
                            }
                        }
                        d
                    };
                    writeln!(
                        f,
                        "      {:indent$}{} tid={} +{} ns for {} ns",
                        "",
                        sp.name.name(),
                        sp.tid,
                        sp.start_ns,
                        sp.dur_ns,
                        indent = depth * 2
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_gemm::pool::PoolStats;

    fn empty_runtime() -> RuntimeStats {
        RuntimeStats {
            plan_hits: 0,
            plan_misses: 0,
            plan_evictions: 0,
            cached_plans: 0,
            pool_workers: 0,
        }
    }

    fn empty_pool() -> PoolStats {
        PoolStats {
            workers: 0,
            queue_highwater: 0,
            worker_wakeups: 0,
            worker_tasks: 0,
            inline_drained: 0,
            park_ns: 0,
            scoped_calls: 0,
        }
    }

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(1023), 9);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(LatencyHistogram::bucket_upper_bound(0), 1);
        assert_eq!(LatencyHistogram::bucket_upper_bound(9), 1023);
    }

    #[test]
    fn overflow_bucket_saturates() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 60);
        h.record(1u64 << (HISTOGRAM_BUCKETS - 1));
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 3);
        assert_eq!(h.count, 3);
        assert_eq!(h.max_ns, u64::MAX);
        assert_eq!(
            LatencyHistogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1),
            u64::MAX
        );
        // Sum saturates rather than wrapping.
        assert_eq!(h.sum_ns, u64::MAX);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in [0u64, 1, 5, 100, 1000, 1_000_000] {
            a.record(v);
            whole.record(v);
        }
        for v in [3u64, 100, 40_000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging an empty histogram changes nothing.
        let before = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(100); // bucket [64, 128)
        }
        for _ in 0..100 {
            h.record(10_000); // bucket [8192, 16384)
        }
        assert_eq!(h.quantile(0.25), 127);
        assert_eq!(h.quantile(0.50), 127);
        assert_eq!(h.quantile(0.75), 10_000); // clamped to max_ns
        assert_eq!(h.quantile(0.99), 10_000);
        assert_eq!(h.quantile(0.0), 127);
        assert_eq!(h.min_ns, 100);
        assert_eq!(h.max_ns, 10_000);
        // Constant distribution: every quantile equals the value
        // (bucket bound clamped to the observed range).
        let mut c = LatencyHistogram::new();
        for _ in 0..1000 {
            c.record(100);
        }
        for q in [0.0, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(c.quantile(q), 100);
        }
        assert_eq!(LatencyHistogram::new().quantile(0.5), 0);
    }

    #[test]
    fn shards_merge_across_threads() {
        let tel = Telemetry::new(true);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tel = &tel;
                s.spawn(move || {
                    for i in 0..50 {
                        tel.record_span(CallSite::Gemm, Phase::Compute, t * 1000 + i);
                    }
                });
            }
        });
        let r = tel.report(empty_runtime(), empty_pool(), ArenaStats::default());
        let h = &r.phases[Phase::Compute.index()].histogram;
        assert_eq!(h.count, 400);
        let want_sum: u64 = (0..8u64)
            .flat_map(|t| (0..50).map(move |i| t * 1000 + i))
            .sum();
        assert_eq!(h.sum_ns, want_sum);
        assert_eq!(h.min_ns, 0);
        assert_eq!(h.max_ns, 7049);
        assert_eq!(
            r.site(CallSite::Gemm).phase_ns[Phase::Compute.index()],
            want_sum
        );
    }

    #[test]
    fn shape_table_merges_concurrent_inserts() {
        let tel = Telemetry::new(true);
        std::thread::scope(|s| {
            for t in 0..8 {
                let tel = &tel;
                s.spawn(move || {
                    for i in 0..100 {
                        tel.record_call(CallSite::Gemm, 8, 8, 8, 4, 1, 10);
                        tel.record_call(CallSite::Gemm, 4 + (t % 2), 4, 4, 4, 1, 20 + i % 3);
                    }
                });
            }
        });
        let r = tel.report(empty_runtime(), empty_pool(), ArenaStats::default());
        assert_eq!(r.dropped_shapes, 0);
        assert!(r.shapes.len() <= 3, "shapes {:?}", r.shapes.len());
        let s888 = r
            .shapes
            .iter()
            .find(|s| (s.m, s.n, s.k) == (8, 8, 8))
            .expect("8x8x8 present");
        assert_eq!(s888.calls, 800);
        assert_eq!(s888.total_ns, 8000);
        assert!(s888.achieved_gflops > 0.0);
        assert!(s888.predicted_gflops > 0.0);
        assert!((s888.p2c - p2c_as_published(8, 8)).abs() < 1e-12);
    }

    #[test]
    fn shape_table_saturation_counts_drops() {
        let tel = Telemetry::new(true);
        for m in 0..SHAPE_SLOTS + 50 {
            tel.record_call(CallSite::Gemm, m + 1, 3, 3, 4, 1, 5);
        }
        let r = tel.report(empty_runtime(), empty_pool(), ArenaStats::default());
        assert_eq!(r.shapes.len(), SHAPE_SLOTS);
        assert_eq!(r.dropped_shapes, 50);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let tel = Telemetry::new(false);
        let rec = tel.recorder(CallSite::Gemm);
        assert!(!rec.active());
        assert!(rec.now().is_none());
        rec.span_ns(Phase::Compute, 100);
        rec.packed_bytes(64);
        tel.record_call(CallSite::Gemm, 8, 8, 8, 4, 1, 10);
        let r = tel.report(empty_runtime(), empty_pool(), ArenaStats::default());
        assert!(!r.enabled);
        assert_eq!(r.phase_count(Phase::Compute), 0);
        // record_call bypasses the recorder gate (callers must check);
        // Smm only invokes it through an active recorder path.
        assert_eq!(r.packed_bytes, 0);
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let tel = Telemetry::new(true);
        tel.record_span(CallSite::GemmBatch, Phase::PackA, 100);
        tel.record_span(CallSite::GemmBatch, Phase::PackB, 150);
        tel.record_span(CallSite::GemmBatch, Phase::Compute, 600);
        tel.record_span(CallSite::GemmBatch, Phase::Sync, 150);
        tel.record_span(CallSite::GemmBatch, Phase::Dispatch, 950);
        let r = tel.report(empty_runtime(), empty_pool(), ArenaStats::default());
        let sb = r.site(CallSite::GemmBatch);
        assert!((sb.pack_pct - 25.0).abs() < 1e-9);
        assert!((sb.compute_pct - 60.0).abs() < 1e-9);
        assert!((sb.sync_pct - 15.0).abs() < 1e-9);
        assert!((sb.pack_pct + sb.compute_pct + sb.sync_pct - 100.0).abs() < 1e-9);
        // Dispatch is reported alongside but not part of the 100%.
        assert_eq!(sb.phase_ns[Phase::Dispatch.index()], 950);
    }

    #[test]
    fn json_and_prometheus_smoke() {
        let tel = Telemetry::new(true);
        tel.record_span(CallSite::Gemm, Phase::Compute, 500);
        tel.record_span(CallSite::Gemm, Phase::PlanLookup, 80);
        tel.add_packed_bytes(1024);
        tel.record_call(CallSite::Gemm, 16, 16, 16, 4, 1, 700);
        let arena = ArenaStats {
            hits: 198,
            misses: 2,
            alloc_bytes: 4096,
        };
        let r = tel.report(empty_runtime(), empty_pool(), arena);
        let j = r.to_json();
        assert!(j.contains("\"compute\""), "{j}");
        assert!(j.contains("\"observed_p2c\""));
        assert!(j.contains("\"m\": 16"));
        assert!(j.contains("\"packed_bytes\": 1024"));
        assert!(j.contains("\"arena\": {\"hits\": 198, \"misses\": 2, \"alloc_bytes\": 4096"));
        let p = r.to_prometheus();
        assert!(p.contains("smm_phase_latency_ns_bucket{phase=\"compute\""));
        assert!(p.contains("le=\"+Inf\"} 1"));
        assert!(p.contains("smm_calls_total{site=\"gemm\"} 1"));
        assert!(p.contains("smm_shape_gflops{m=\"16\",n=\"16\",k=\"16\"}"));
        assert!(p.contains("smm_packed_bytes_total 1024"));
        assert!(p.contains("smm_arena_hits_total 198"));
        assert!(p.contains("smm_arena_misses_total 2"));
        assert!(p.contains("smm_arena_alloc_bytes_total 4096"));
        assert!(p.contains("smm_arena_hit_rate 0.99"));
        let d = format!("{r}");
        assert!(d.contains("observed P2C"));
        assert!(d.contains("arena: 198 hits / 2 misses"));
        assert!(d.contains("rate window"));
    }

    #[test]
    fn prometheus_histograms_expose_the_full_cumulative_ladder() {
        let tel = Telemetry::new(true);
        // Two compute spans far apart: buckets between them are empty
        // but must still be exposed (cumulative, stable label set).
        tel.record_span(CallSite::Gemm, Phase::Compute, 3); // bucket [2,4)
        tel.record_span(CallSite::Gemm, Phase::Compute, 5000); // bucket [4096,8192)
        let r = tel.report(empty_runtime(), empty_pool(), ArenaStats::default());
        let p = r.to_prometheus();
        let buckets: Vec<(u64, u64)> = p
            .lines()
            .filter_map(|l| {
                let rest = l.strip_prefix("smm_phase_latency_ns_bucket{phase=\"compute\",le=\"")?;
                let (le, val) = rest.split_once("\"} ")?;
                Some((le.parse().ok()?, val.parse().ok()?))
            })
            .collect();
        assert_eq!(
            buckets.len(),
            HISTOGRAM_BUCKETS,
            "every finite bucket boundary is exposed on every scrape"
        );
        // Cumulative and monotone: 0 below the first sample, 1 between
        // the two, 2 at and above the second, ending at count.
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(buckets[0], (1, 0), "empty leading bucket still present");
        let at = |ns: u64| buckets.iter().find(|(le, _)| *le >= ns).unwrap().1;
        assert_eq!(at(3), 1);
        assert_eq!(at(5000), 2);
        assert_eq!(buckets.last().unwrap().1, 2);
        assert!(p.contains("smm_phase_latency_ns_bucket{phase=\"compute\",le=\"+Inf\"} 2"));
        // Empty phases expose the ladder too (all zeros).
        assert!(p.contains("smm_phase_latency_ns_bucket{phase=\"reply\",le=\"+Inf\"} 0"));
        // Every sample family has a TYPE line naming it exactly.
        for family in [
            "smm_plan_cache_hits_total",
            "smm_pool_workers",
            "smm_arena_hit_rate",
            "smm_rate_req_per_sec",
            "smm_rate_p99_trend_ns_per_sec",
        ] {
            assert!(
                p.contains(&format!("# TYPE {family} ")),
                "missing TYPE for {family}"
            );
        }
    }

    #[test]
    fn rate_window_rides_along_in_reports() {
        let tel = Telemetry::with_rate_window(true, Duration::from_secs(8));
        for _ in 0..50 {
            tel.record_call(CallSite::Serve, 8, 8, 8, 4, 1, 10_000);
        }
        let r = tel.report(empty_runtime(), empty_pool(), ArenaStats::default());
        assert!(r.rate.req_per_sec > 0.0, "{:?}", r.rate);
        assert!(r.rate.gflops_per_sec > 0.0);
        assert!(r.rate.live_slots >= 1);
        assert_eq!(r.rate.mean_ns, 10_000);
        let j = r.to_json();
        assert!(j.contains("\"rate\": {\"window_secs\": 8.000000"));
        assert!(j.contains("\"slow\": ["));
        // Disabled registries never tick the window.
        let off = Telemetry::new(false);
        off.record_call(CallSite::Serve, 8, 8, 8, 4, 1, 10_000);
        let r = off.report(empty_runtime(), empty_pool(), ArenaStats::default());
        assert_eq!(r.rate.live_slots, 0);
        assert_eq!(r.rate.req_per_sec, 0.0);
    }

    #[test]
    fn observed_p2c_uses_paper_widths() {
        let tel = Telemetry::new(true);
        // 1 GEMM of 8x8x8: flops = 1024, MACs = 512, fmas = 512/8 = 64.
        // 1024 packed bytes = 64 vector loads -> P2C = 1.0.
        tel.add_packed_bytes(1024);
        tel.record_call(CallSite::Gemm, 8, 8, 8, 4, 1, 100);
        let r = tel.report(empty_runtime(), empty_pool(), ArenaStats::default());
        assert!((r.observed_p2c - 1.0).abs() < 1e-9, "{}", r.observed_p2c);
    }
}
