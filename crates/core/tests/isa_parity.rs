//! Per-ISA oracle parity and predication-coverage tests.
//!
//! The width-agnostic redesign must not change what GEMM computes:
//! every [`VectorIsa`] config (NEON-128, SVE-256, SVE-512) is held to
//! the naive triple-loop oracle over the edge shapes the paper calls
//! out (unit dimensions, `k = 0`, `beta != 0`, gapped `ldc`, and
//! residues straddling each width's f32 lane count), NEON-128 is held
//! bit-for-bit to the default build, and the predicated tiling is
//! proven to cover exactly the residues the dedicated edge-kernel
//! cascade used to cover.
//!
//! One test honors `SMM_TEST_ISA` (`neon128|sve256|sve512`) so the CI
//! matrix drives a full end-to-end pass at each width.

use smm_core::plan::{exact_tiles, exact_tiles_for};
use smm_core::{Smm, VectorIsa};
use smm_gemm::gemm_naive;
use smm_gemm::matrix::{Mat, MatMut};

fn smm_for(isa: VectorIsa) -> Smm<f32> {
    Smm::<f32>::builder().isa(isa).threads(1).build()
}

/// Edge shapes: unit dims, `k = 0`, and residues around every ISA's
/// f32 lane count (4, 8, 16) so each config sees tiles just below, at,
/// and just above its native width.
fn edge_shapes() -> Vec<(usize, usize, usize)> {
    let mut shapes = vec![(1, 7, 9), (9, 1, 7), (1, 1, 5), (5, 6, 0), (75, 33, 64)];
    for lanes in [4usize, 8, 16] {
        shapes.push((lanes - 1, lanes + 1, 8));
        shapes.push((lanes, lanes, 8));
        shapes.push((2 * lanes + 3, lanes + 2, 12));
    }
    shapes
}

fn assert_close(c: &Mat<f32>, c_ref: &Mat<f32>, ctx: &str) {
    let diff = c.max_abs_diff(c_ref);
    assert!(diff < 1e-3, "{ctx}: max |diff| = {diff}");
}

/// Every ISA config matches the naive oracle over the edge-shape
/// sweep, with `alpha` scaling and a non-trivial `beta`.
#[test]
fn edge_shapes_match_naive_on_every_isa() {
    for isa in VectorIsa::all() {
        let smm = smm_for(isa);
        for (m, n, k) in edge_shapes() {
            let a = Mat::<f32>::random(m, k, 11);
            let b = Mat::<f32>::random(k, n, 23);
            let mut c = Mat::<f32>::random(m, n, 37);
            let mut c_ref = Mat::<f32>::from_fn(m, n, |i, j| c.as_ref().at(i, j));
            smm.gemm(1.5, a.as_ref(), b.as_ref(), 0.5, c.as_mut());
            gemm_naive(1.5, a.as_ref(), b.as_ref(), 0.5, c_ref.as_mut());
            assert_close(&c, &c_ref, &format!("{isa} {m}x{n}x{k}"));
        }
    }
}

/// A gapped `ldc` (leading dimension larger than `m`) is honored at
/// every width: results match the oracle and the gap rows are never
/// written.
#[test]
fn gapped_ldc_matches_naive_on_every_isa() {
    let (m, n, k, ldc) = (13, 9, 17, 13 + 5);
    let a = Mat::<f32>::random(m, k, 3);
    let b = Mat::<f32>::random(k, n, 5);
    let sentinel = -1234.5_f32;
    for isa in VectorIsa::all() {
        let smm = smm_for(isa);
        let mut buf = vec![sentinel; ldc * n];
        let mut buf_ref = buf.clone();
        smm.gemm(
            1.25,
            a.as_ref(),
            b.as_ref(),
            2.0,
            MatMut::from_slice(&mut buf, m, n, ldc),
        );
        gemm_naive(
            1.25,
            a.as_ref(),
            b.as_ref(),
            2.0,
            MatMut::from_slice(&mut buf_ref, m, n, ldc),
        );
        for j in 0..n {
            for i in 0..ldc {
                let (got, want) = (buf[j * ldc + i], buf_ref[j * ldc + i]);
                if i < m {
                    assert!(
                        (got - want).abs() < 1e-3,
                        "{isa} c[{i},{j}]: {got} vs {want}"
                    );
                } else {
                    assert_eq!(got, sentinel, "{isa} wrote into the ldc gap at [{i},{j}]");
                }
            }
        }
    }
}

/// NEON-128 through the builder is bit-for-bit the default build: the
/// redesign introduced no behavioral drift at the seed width.
#[test]
fn neon128_is_bit_identical_to_the_default_build() {
    let default = Smm::<f32>::builder().threads(1).build();
    let neon = smm_for(VectorIsa::neon128());
    for (m, n, k) in edge_shapes() {
        let a = Mat::<f32>::random(m, k, 7);
        let b = Mat::<f32>::random(k, n, 13);
        let mut c0 = Mat::<f32>::random(m, n, 19);
        let mut c1 = Mat::<f32>::from_fn(m, n, |i, j| c0.as_ref().at(i, j));
        default.gemm(0.75, a.as_ref(), b.as_ref(), -0.5, c0.as_mut());
        neon.gemm(0.75, a.as_ref(), b.as_ref(), -0.5, c1.as_mut());
        for (x, y) in c0.data().iter().zip(c1.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{m}x{n}x{k}: {x} vs {y}");
        }
    }
}

/// The predicated tiling covers exactly the index range the greedy
/// edge-kernel cascade used to cover: same full tiles, and one masked
/// remainder tile standing in for the power-of-2 cascade over
/// `len % step` — nothing dropped, nothing double-covered.
#[test]
fn predicated_tiling_covers_exactly_the_greedy_residues() {
    let sve = VectorIsa::sve256();
    for step in [4usize, 8, 12, 16] {
        for len in 1..=200 {
            let greedy = exact_tiles(len, step);
            let pred = exact_tiles_for(len, step, &sve);

            // Both cover [0, len) contiguously with no overlap.
            for tiles in [&greedy, &pred] {
                let mut next = 0;
                for t in tiles.iter() {
                    assert_eq!(t.offset, next, "len={len} step={step}");
                    next += t.logical;
                }
                assert_eq!(next, len, "len={len} step={step}");
            }

            // Identical full-tile prefix; the greedy cascade's residue
            // parts sum to the predicated path's single remainder.
            assert_eq!(
                pred.iter().filter(|t| t.logical == step).count(),
                len / step
            );
            let residue = len % step;
            let greedy_residue: usize = greedy.iter().skip(len / step).map(|t| t.logical).sum();
            assert_eq!(greedy_residue, residue, "len={len} step={step}");
            if residue > 0 {
                assert_eq!(pred.len(), len / step + 1);
                assert_eq!(pred.last().unwrap().logical, residue);
            } else {
                assert_eq!(pred.len(), len / step);
            }
        }
    }
}

/// End-to-end pass at the ISA named by `SMM_TEST_ISA` (the CI matrix
/// variable); defaults to NEON-128 locally. Confirms the plan actually
/// carries the requested ISA and the native result matches the oracle.
#[test]
fn matrix_isa_from_env_runs_end_to_end() {
    let isa = std::env::var("SMM_TEST_ISA")
        .ok()
        .map(|name| VectorIsa::by_name(&name).unwrap_or_else(|| panic!("bad SMM_TEST_ISA {name}")))
        .unwrap_or_default();
    let smm = smm_for(isa);
    let plan = smm.plan(75, 33, 64);
    assert_eq!(plan.isa, isa, "plan must carry the requested ISA");

    let a = Mat::<f32>::random(75, 64, 2);
    let b = Mat::<f32>::random(64, 33, 4);
    let mut c = Mat::<f32>::zeros(75, 33);
    let mut c_ref = Mat::<f32>::zeros(75, 33);
    smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
    assert_close(&c, &c_ref, &format!("{isa} 75x33x64"));
}
