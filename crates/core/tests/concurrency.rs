//! Hammer one shared `Smm` from many threads at once.
//!
//! The runtime claims the sharded plan cache and the persistent pool
//! make a single instance safely shareable; this test drives 8+
//! threads over a mixed shape set and checks every result against the
//! naive reference, plus the cache-residency bound.

use std::sync::Arc;

use smm_core::{CallSite, Phase, Smm};
use smm_gemm::gemm_naive;
use smm_gemm::matrix::Mat;

/// xorshift64* — deterministic shape/seed selection per thread.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }
}

const SHAPES: &[(usize, usize, usize)] = &[
    (4, 4, 4),
    (8, 8, 8),
    (13, 7, 21),
    (32, 32, 32),
    (2, 48, 16),
    (48, 2, 16),
    (24, 24, 3),
    (17, 29, 11),
];

fn hammer(smm: Arc<Smm<f32>>, threads: usize, iters: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let smm = Arc::clone(&smm);
            s.spawn(move || {
                let mut rng = Rng::new(0xC0FFEE + t as u64);
                for it in 0..iters {
                    let (m, n, k) = SHAPES[rng.range(0, SHAPES.len() - 1)];
                    let seed = (t * 1000 + it) as u64;
                    let a = Mat::<f32>::random(m, k, seed);
                    let b = Mat::<f32>::random(k, n, seed + 1);
                    let mut c = Mat::<f32>::random(m, n, seed + 2);
                    let mut c_ref = c.clone();
                    smm.gemm(1.5, a.as_ref(), b.as_ref(), 0.5, c.as_mut());
                    gemm_naive(1.5, a.as_ref(), b.as_ref(), 0.5, c_ref.as_mut());
                    let d = c.max_abs_diff(&c_ref);
                    assert!(d < 1e-3, "thread {t} iter {it}: {m}x{n}x{k} diff {d}");
                }
            });
        }
    });
}

#[test]
fn shared_instance_survives_8_thread_hammer() {
    let smm = Arc::new(Smm::<f32>::new());
    hammer(Arc::clone(&smm), 8, 40);
    // Every thread draws from the same shape set, so residency is
    // bounded by the set size regardless of contention.
    assert!(smm.cached_plans() <= SHAPES.len());
    let s = smm.stats();
    assert_eq!(s.plan_hits + s.plan_misses, 8 * 40);
    assert!(s.plan_misses as usize <= SHAPES.len());
}

#[test]
fn telemetry_is_consistent_under_parallel_load() {
    // The sharded span recorders must not lose or double-count events
    // when 8 threads hammer one instance: every `gemm` call records
    // exactly one plan-lookup span and (single-threaded plans) exactly
    // one compute span, and the per-site call counter matches.
    let calls = 8 * 40;
    let smm = Arc::new(Smm::<f32>::new());
    hammer(Arc::clone(&smm), 8, 40);

    let r = smm.stats_report();
    assert!(r.enabled);
    assert_eq!(r.runtime.plan_hits + r.runtime.plan_misses, calls);
    assert_eq!(r.phase_count(Phase::PlanLookup), calls);
    assert_eq!(r.phase_count(Phase::Compute), calls);
    assert_eq!(r.site(CallSite::Gemm).calls, calls);
    // Shape table: 8 distinct shapes, each call attributed to exactly
    // one of them.
    assert_eq!(r.shapes.len(), SHAPES.len());
    assert_eq!(r.shapes.iter().map(|s| s.calls).sum::<u64>(), calls);
    assert_eq!(r.dropped_shapes, 0);
    assert!(r.flops > 0);

    // Counters are monotonic: more load only ever increases them.
    hammer(Arc::clone(&smm), 4, 10);
    let r2 = smm.stats_report();
    assert_eq!(r2.site(CallSite::Gemm).calls, calls + 4 * 10);
    assert_eq!(r2.phase_count(Phase::Compute), calls + 4 * 10);
    assert!(r2.flops > r.flops);
    for p in Phase::ALL {
        assert!(r2.phase_count(p) >= r.phase_count(p), "{} shrank", p.name());
        assert!(r2.phase_ns(p) >= r.phase_ns(p), "{} ns shrank", p.name());
    }
}

#[test]
fn shared_threaded_instance_is_correct_under_contention() {
    // Multi-threaded plans → concurrent callers also contend on the
    // pool's injection queue.
    let smm = Arc::new(Smm::<f32>::with_threads(4));
    hammer(Arc::clone(&smm), 8, 20);
    assert!(smm.cached_plans() <= SHAPES.len());
    // Threaded plans may record one compute span per pool task, so the
    // exact-count invariant relaxes to "at least one per call"; the
    // per-call counters stay exact.
    let r = smm.stats_report();
    assert_eq!(r.site(CallSite::Gemm).calls, 8 * 20);
    assert_eq!(r.phase_count(Phase::PlanLookup), 8 * 20);
    assert!(r.phase_count(Phase::Compute) >= 8 * 20);
    assert_eq!(r.shapes.iter().map(|s| s.calls).sum::<u64>(), 8 * 20);
}

#[test]
fn bounded_cache_stays_bounded_under_contention() {
    let smm = Arc::new(Smm::<f32>::builder().cache_capacity(4 * 16).build());
    std::thread::scope(|s| {
        for t in 0..8 {
            let smm = Arc::clone(&smm);
            s.spawn(move || {
                for m in 1..=32 {
                    smm.plan(m, 3 + t % 3, 5);
                }
            });
        }
    });
    assert!(
        smm.cached_plans() <= 4 * 16,
        "resident {}",
        smm.cached_plans()
    );
}
