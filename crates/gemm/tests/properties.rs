//! Property-style tests for the GEMM layer, driven by a deterministic
//! xorshift sweep: packing round-trips and engine correctness under
//! arbitrary blocking parameters.

use smm_gemm::engine::GotoEngine;
use smm_gemm::gemm_naive;
use smm_gemm::matrix::{Mat, PanelMatrix};
use smm_gemm::pack::{pack_a, pack_b};
use smm_kernels::registry::LibraryProfile;
use smm_model::BlockingParams;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

/// pack_a is a permutation-with-padding: every source element lands at
/// its Fig. 2 position, padding is zero.
#[test]
fn pack_a_round_trip() {
    let mut rng = Rng::new(31);
    for _ in 0..64 {
        let rows = rng.range(1, 40);
        let kc = rng.range(1, 20);
        let mr = rng.range(1, 17);
        let seed = rng.range(0, 1000) as u64;
        let a = Mat::<f32>::random(rows + 2, kc + 3, seed);
        let mut buf = Vec::new();
        pack_a(a.as_ref(), 1, 2, rows, kc, mr, &mut buf);
        let panels = rows.div_ceil(mr);
        assert_eq!(buf.len(), panels * mr * kc);
        for t in 0..panels {
            for p in 0..kc {
                for i in 0..mr {
                    let got = buf[t * mr * kc + p * mr + i];
                    let gi = t * mr + i;
                    let want = if gi < rows { a[(1 + gi, 2 + p)] } else { 0.0 };
                    assert_eq!(got, want);
                }
            }
        }
    }
}

/// pack_b mirrors pack_a on the N side.
#[test]
fn pack_b_round_trip() {
    let mut rng = Rng::new(32);
    for _ in 0..64 {
        let cols = rng.range(1, 40);
        let kc = rng.range(1, 20);
        let nr = rng.range(1, 17);
        let seed = rng.range(0, 1000) as u64;
        let b = Mat::<f32>::random(kc + 1, cols + 2, seed);
        let mut buf = Vec::new();
        pack_b(b.as_ref(), 0, 1, kc, cols, nr, &mut buf);
        let slivers = cols.div_ceil(nr);
        assert_eq!(buf.len(), slivers * nr * kc);
        for t in 0..slivers {
            for p in 0..kc {
                for j in 0..nr {
                    let got = buf[t * nr * kc + p * nr + j];
                    let gj = t * nr + j;
                    let want = if gj < cols { b[(p, 1 + gj)] } else { 0.0 };
                    assert_eq!(got, want);
                }
            }
        }
    }
}

/// The Goto engine is correct for arbitrary (clipped) blocking
/// parameters, not just the cache-derived ones.
#[test]
fn engine_correct_under_any_blocking() {
    let mut rng = Rng::new(33);
    for _ in 0..64 {
        let m = rng.range(1, 50);
        let n = rng.range(1, 50);
        let k = rng.range(1, 50);
        let kc = rng.range(1, 64);
        let mc = rng.range(1, 64);
        let nc = rng.range(1, 64);
        let seed = rng.range(0, 1000) as u64;
        let profile = match rng.range(0, 3) {
            0 => LibraryProfile::openblas(),
            1 => LibraryProfile::blis(),
            _ => LibraryProfile::eigen(),
        };
        let mut engine = GotoEngine::with_profile(profile);
        engine.blocking = BlockingParams { kc, mc, nc };
        let a = Mat::<f32>::random(m, k, seed);
        let b = Mat::<f32>::random(k, n, seed + 1);
        let mut c = Mat::<f32>::random(m, n, seed + 2);
        let mut c_ref = c.clone();
        engine.gemm(1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 1.0, c_ref.as_mut());
        let d = c.max_abs_diff(&c_ref);
        assert!(d < 1e-3 * (k as f64 + 10.0), "diff {d}");
    }
}

/// Panel-major conversion round-trips for any ps.
#[test]
fn panel_matrix_round_trip() {
    let mut rng = Rng::new(34);
    for _ in 0..64 {
        let rows = rng.range(1, 60);
        let cols = rng.range(1, 30);
        let ps = rng.range(1, 9);
        let seed = rng.range(0, 1000) as u64;
        let m = Mat::<f32>::random(rows, cols, seed);
        let p = PanelMatrix::from_col_major(m.as_ref(), ps);
        assert_eq!(p.to_mat(), m);
    }
}

/// Thread splits of C are an exact partition for any grid.
#[test]
fn parallel_grids_are_exact() {
    let mut rng = Rng::new(35);
    for _ in 0..48 {
        let m = rng.range(1, 40);
        let n = rng.range(1, 40);
        let k = rng.range(1, 20);
        let m_ways = rng.range(1, 6);
        let n_ways = rng.range(1, 6);
        let seed = rng.range(0, 500) as u64;
        let engine = GotoEngine::with_profile(LibraryProfile::openblas());
        let a = Mat::<f32>::random(m, k, seed);
        let b = Mat::<f32>::random(k, n, seed + 1);
        let mut c = Mat::<f32>::random(m, n, seed + 2);
        let mut c_ref = c.clone();
        smm_gemm::parallel::gemm_parallel_2d(
            &engine,
            m_ways,
            n_ways,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.5,
            c.as_mut(),
        );
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.5, c_ref.as_mut());
        let d = c.max_abs_diff(&c_ref);
        assert!(d < 1e-3 * (k as f64 + 10.0), "diff {d}");
    }
}
