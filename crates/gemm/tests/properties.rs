//! Property tests for the GEMM layer: packing round-trips and engine
//! correctness under arbitrary blocking parameters.

use proptest::prelude::*;
use smm_gemm::engine::GotoEngine;
use smm_gemm::gemm_naive;
use smm_gemm::matrix::{Mat, PanelMatrix};
use smm_gemm::pack::{pack_a, pack_b};
use smm_kernels::registry::LibraryProfile;
use smm_model::BlockingParams;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// pack_a is a permutation-with-padding: every source element lands
    /// at its Fig. 2 position, padding is zero.
    #[test]
    fn pack_a_round_trip(
        rows in 1usize..40,
        kc in 1usize..20,
        mr in 1usize..=16,
        seed in 0u64..1000,
    ) {
        let a = Mat::<f32>::random(rows + 2, kc + 3, seed);
        let mut buf = Vec::new();
        pack_a(a.as_ref(), 1, 2, rows, kc, mr, &mut buf);
        let panels = rows.div_ceil(mr);
        prop_assert_eq!(buf.len(), panels * mr * kc);
        for t in 0..panels {
            for p in 0..kc {
                for i in 0..mr {
                    let got = buf[t * mr * kc + p * mr + i];
                    let gi = t * mr + i;
                    let want = if gi < rows { a[(1 + gi, 2 + p)] } else { 0.0 };
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    /// pack_b mirrors pack_a on the N side.
    #[test]
    fn pack_b_round_trip(
        cols in 1usize..40,
        kc in 1usize..20,
        nr in 1usize..=16,
        seed in 0u64..1000,
    ) {
        let b = Mat::<f32>::random(kc + 1, cols + 2, seed);
        let mut buf = Vec::new();
        pack_b(b.as_ref(), 0, 1, kc, cols, nr, &mut buf);
        let slivers = cols.div_ceil(nr);
        prop_assert_eq!(buf.len(), slivers * nr * kc);
        for t in 0..slivers {
            for p in 0..kc {
                for j in 0..nr {
                    let got = buf[t * nr * kc + p * nr + j];
                    let gj = t * nr + j;
                    let want = if gj < cols { b[(p, 1 + gj)] } else { 0.0 };
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    /// The Goto engine is correct for arbitrary (clipped) blocking
    /// parameters, not just the cache-derived ones.
    #[test]
    fn engine_correct_under_any_blocking(
        m in 1usize..50,
        n in 1usize..50,
        k in 1usize..50,
        kc in 1usize..64,
        mc in 1usize..64,
        nc in 1usize..64,
        profile_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let profile = match profile_idx {
            0 => LibraryProfile::openblas(),
            1 => LibraryProfile::blis(),
            _ => LibraryProfile::eigen(),
        };
        let mut engine = GotoEngine::with_profile(profile);
        engine.blocking = BlockingParams { kc, mc, nc };
        let a = Mat::<f32>::random(m, k, seed);
        let b = Mat::<f32>::random(k, n, seed + 1);
        let mut c = Mat::<f32>::random(m, n, seed + 2);
        let mut c_ref = c.clone();
        engine.gemm(1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 1.0, c_ref.as_mut());
        let d = c.max_abs_diff(&c_ref);
        prop_assert!(d < 1e-3 * (k as f64 + 10.0), "diff {d}");
    }

    /// Panel-major conversion round-trips for any ps.
    #[test]
    fn panel_matrix_round_trip(
        rows in 1usize..60,
        cols in 1usize..30,
        ps in 1usize..=8,
        seed in 0u64..1000,
    ) {
        let m = Mat::<f32>::random(rows, cols, seed);
        let p = PanelMatrix::from_col_major(m.as_ref(), ps);
        prop_assert_eq!(p.to_mat(), m);
    }

    /// Thread splits of C are an exact partition for any grid.
    #[test]
    fn parallel_grids_are_exact(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..20,
        m_ways in 1usize..6,
        n_ways in 1usize..6,
        seed in 0u64..500,
    ) {
        let engine = GotoEngine::with_profile(LibraryProfile::openblas());
        let a = Mat::<f32>::random(m, k, seed);
        let b = Mat::<f32>::random(k, n, seed + 1);
        let mut c = Mat::<f32>::random(m, n, seed + 2);
        let mut c_ref = c.clone();
        smm_gemm::parallel::gemm_parallel_2d(
            &engine, m_ways, n_ways, 1.0, a.as_ref(), b.as_ref(), 0.5, c.as_mut(),
        );
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.5, c_ref.as_mut());
        let d = c.max_abs_diff(&c_ref);
        prop_assert!(d < 1e-3 * (k as f64 + 10.0), "diff {d}");
    }
}
