//! Operand packing (the Fig. 2 formats of the paper).
//!
//! `Ã` stores an `mc × kc` block of `A` as a sequence of `mr`-row
//! panels, each panel k-major: panel `t` holds
//! `Ã[t][p*mr + i] = A(t*mr + i, p)`. `B̃` stores a `kc × nc` panel of
//! `B` as `nr`-column slivers: sliver `t` holds
//! `B̃[t][p*nr + j] = B(p, t*nr + j)`. Remainder panels are zero-padded
//! to the full `mr`/`nr` so the micro-kernel can always run the full
//! register tile (the BLIS/BLASFEO strategy); callers using edge
//! kernels simply pack with the edge tile as `mr`.

use smm_kernels::Scalar;

use crate::matrix::MatRef;

/// Pack an `rows × kc` block of `a` (starting at row `i0`, column `p0`)
/// into `mr`-row panels, zero-padding the last panel. Returns panels
/// laid out consecutively; panel stride is `mr * kc`.
pub fn pack_a<S: Scalar>(
    a: MatRef<'_, S>,
    i0: usize,
    p0: usize,
    rows: usize,
    kc: usize,
    mr: usize,
    out: &mut Vec<S>,
) {
    assert!(
        i0 + rows <= a.rows() && p0 + kc <= a.cols(),
        "pack_a block out of bounds"
    );
    assert!(mr >= 1);
    let panels = rows.div_ceil(mr);
    out.clear();
    out.resize(panels * mr * kc, S::ZERO);
    for t in 0..panels {
        let base = t * mr * kc;
        let rows_here = (rows - t * mr).min(mr);
        for p in 0..kc {
            for i in 0..rows_here {
                out[base + p * mr + i] = a.at(i0 + t * mr + i, p0 + p);
            }
        }
    }
}

/// Pack a `kc × cols` block of `b` (starting at row `p0`, column `j0`)
/// into `nr`-column slivers, zero-padding the last sliver. Sliver
/// stride is `nr * kc`.
pub fn pack_b<S: Scalar>(
    b: MatRef<'_, S>,
    p0: usize,
    j0: usize,
    kc: usize,
    cols: usize,
    nr: usize,
    out: &mut Vec<S>,
) {
    assert!(
        p0 + kc <= b.rows() && j0 + cols <= b.cols(),
        "pack_b block out of bounds"
    );
    assert!(nr >= 1);
    let slivers = cols.div_ceil(nr);
    out.clear();
    out.resize(slivers * nr * kc, S::ZERO);
    for t in 0..slivers {
        let base = t * nr * kc;
        let cols_here = (cols - t * nr).min(nr);
        for p in 0..kc {
            for j in 0..cols_here {
                out[base + p * nr + j] = b.at(p0 + p, j0 + t * nr + j);
            }
        }
    }
}

/// Pack a single `mr_e × kc` edge sliver *exactly* (no padding) — the
/// OpenBLAS edge-kernel path, and the Fig. 8 "pack the edge to use
/// SIMD" trick for the reference implementation.
pub fn pack_a_exact<S: Scalar>(
    a: MatRef<'_, S>,
    i0: usize,
    p0: usize,
    mr_e: usize,
    kc: usize,
    out: &mut Vec<S>,
) {
    assert!(
        i0 + mr_e <= a.rows() && p0 + kc <= a.cols(),
        "edge sliver out of bounds"
    );
    out.clear();
    out.resize(mr_e * kc, S::ZERO);
    for p in 0..kc {
        for i in 0..mr_e {
            out[p * mr_e + i] = a.at(i0 + i, p0 + p);
        }
    }
}

/// Pack a single `kc × nr_e` edge sliver exactly (no padding).
pub fn pack_b_exact<S: Scalar>(
    b: MatRef<'_, S>,
    p0: usize,
    j0: usize,
    kc: usize,
    nr_e: usize,
    out: &mut Vec<S>,
) {
    assert!(
        p0 + kc <= b.rows() && j0 + nr_e <= b.cols(),
        "edge sliver out of bounds"
    );
    out.clear();
    out.resize(kc * nr_e, S::ZERO);
    for p in 0..kc {
        for j in 0..nr_e {
            out[p * nr_e + j] = b.at(p0 + p, j0 + j);
        }
    }
}

/// [`pack_b_exact`] appending at the end of `out` (not cleared);
/// returns the sliver's start offset. One reusable arena buffer can
/// thus hold every sliver of a k block without per-sliver allocations.
pub fn pack_b_exact_append<S: Scalar>(
    b: MatRef<'_, S>,
    p0: usize,
    j0: usize,
    kc: usize,
    nr_e: usize,
    out: &mut Vec<S>,
) -> usize {
    assert!(
        p0 + kc <= b.rows() && j0 + nr_e <= b.cols(),
        "edge sliver out of bounds"
    );
    let start = out.len();
    out.resize(start + kc * nr_e, S::ZERO);
    for p in 0..kc {
        for j in 0..nr_e {
            out[start + p * nr_e + j] = b.at(p0 + p, j0 + j);
        }
    }
    start
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;

    #[test]
    fn pack_a_layout_matches_fig2() {
        let a = Mat::<f32>::from_fn(8, 3, |i, j| (i * 10 + j) as f32);
        let mut buf = Vec::new();
        pack_a(a.as_ref(), 0, 0, 8, 3, 4, &mut buf);
        // Two panels of 4 rows x 3 cols each.
        assert_eq!(buf.len(), 2 * 4 * 3);
        // Panel 0, k=0 holds rows 0..4 of column 0.
        assert_eq!(&buf[0..4], &[0.0, 10.0, 20.0, 30.0]);
        // Panel 0, k=1 holds column 1.
        assert_eq!(&buf[4..8], &[1.0, 11.0, 21.0, 31.0]);
        // Panel 1 starts with rows 4..8 of column 0.
        assert_eq!(&buf[12..16], &[40.0, 50.0, 60.0, 70.0]);
    }

    #[test]
    fn pack_a_zero_pads_the_remainder_panel() {
        let a = Mat::<f32>::from_fn(6, 2, |_, _| 1.0);
        let mut buf = Vec::new();
        pack_a(a.as_ref(), 0, 0, 6, 2, 4, &mut buf);
        // Second panel has 2 real rows + 2 zero rows per k.
        assert_eq!(&buf[8..12], &[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(&buf[12..16], &[1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_b_layout_matches_fig2() {
        let b = Mat::<f32>::from_fn(3, 8, |i, j| (i * 10 + j) as f32);
        let mut buf = Vec::new();
        pack_b(b.as_ref(), 0, 0, 3, 8, 4, &mut buf);
        // Sliver 0, k=0 holds row 0, cols 0..4.
        assert_eq!(&buf[0..4], &[0.0, 1.0, 2.0, 3.0]);
        // Sliver 0, k=1 holds row 1.
        assert_eq!(&buf[4..8], &[10.0, 11.0, 12.0, 13.0]);
        // Sliver 1 holds cols 4..8.
        assert_eq!(&buf[12..16], &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn pack_b_zero_pads_the_remainder_sliver() {
        let b = Mat::<f32>::from_fn(2, 5, |_, _| 2.0);
        let mut buf = Vec::new();
        pack_b(b.as_ref(), 0, 0, 2, 5, 4, &mut buf);
        assert_eq!(&buf[8..12], &[2.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn sub_block_packing_respects_offsets() {
        let a = Mat::<f32>::from_fn(10, 10, |i, j| (i * 100 + j) as f32);
        let mut buf = Vec::new();
        pack_a(a.as_ref(), 2, 3, 4, 2, 4, &mut buf);
        assert_eq!(buf[0], 203.0); // A(2,3)
        assert_eq!(buf[4], 204.0); // A(2,4)
    }

    #[test]
    fn exact_edge_packing_has_no_padding() {
        let a = Mat::<f32>::from_fn(5, 4, |i, j| (i + j) as f32);
        let mut buf = Vec::new();
        pack_a_exact(a.as_ref(), 3, 0, 2, 4, &mut buf);
        assert_eq!(buf.len(), 8);
        assert_eq!(buf[0], 3.0); // A(3,0)
        assert_eq!(buf[1], 4.0); // A(4,0)
        let b = Mat::<f32>::from_fn(4, 5, |i, j| (i * 2 + j) as f32);
        pack_b_exact(b.as_ref(), 0, 4, 4, 1, &mut buf);
        assert_eq!(buf, vec![4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn packed_product_matches_direct_product() {
        // The packed layouts must agree with the micro-kernel contract.
        let m = 8;
        let n = 8;
        let k = 5;
        let a = Mat::<f32>::random(m, k, 1);
        let b = Mat::<f32>::random(k, n, 2);
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        pack_a(a.as_ref(), 0, 0, m, k, 8, &mut pa);
        pack_b(b.as_ref(), 0, 0, k, n, 8, &mut pb);
        let mut c = vec![0.0f32; m * n];
        smm_kernels::Kernel::<f32>::for_shape(8, 8).run(k, 1.0, &pa, &pb, &mut c, m);
        for j in 0..n {
            for i in 0..m {
                let mut want = 0.0;
                for p in 0..k {
                    want += a[(i, p)] * b[(p, j)];
                }
                assert!((c[j * m + i] - want).abs() < 1e-4, "({i},{j})");
            }
        }
    }

    #[test]
    fn append_packing_matches_exact_packing() {
        let b = Mat::<f32>::random(9, 12, 4);
        let mut exact = Vec::new();
        let mut appended = vec![99.0f32; 3]; // pre-existing content kept
        pack_b_exact(b.as_ref(), 1, 2, 7, 5, &mut exact);
        let off = pack_b_exact_append(b.as_ref(), 1, 2, 7, 5, &mut appended);
        assert_eq!(off, 3);
        assert_eq!(&appended[..3], &[99.0; 3]);
        assert_eq!(&appended[off..], exact.as_slice());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pack_a_bounds_checked() {
        let a = Mat::<f32>::zeros(4, 4);
        let mut buf = Vec::new();
        pack_a(a.as_ref(), 2, 0, 4, 4, 4, &mut buf);
    }
}
