//! The BLIS strategy.
//!
//! 8×12 micro-kernel (unroll 4), zero-padded edges, and the
//! multi-dimensional parallelization of Smith et al. that the paper
//! credits for BLIS's multi-threaded lead (§III-D): the thread count
//! factors into ways over the `jc`/`ic`/`jr`/`ir` loops chosen at run
//! time so that small dimensions are not parallelized, packed-buffer
//! cohorts stay small, and synchronization is fine-grained.

use smm_kernels::registry::{tile_dimension, LibraryProfile};
use smm_kernels::trace_gen::KernelTraceParams;
use smm_kernels::Scalar;
use smm_model::parallel::{select_grid, ThreadGrid};
use smm_model::KernelShape;
use smm_simarch::phase::Phase;

use crate::engine::GotoEngine;
use crate::matrix::{MatMut, MatRef};
use crate::parallel::{gemm_parallel_grid, split_ranges};
use crate::sim::{GemmLayout, MacroOp, PackAPanelOp, PackBSliverOp, SimJob, ELEM};
use crate::strategy::Strategy;

/// The BLIS-style implementation.
#[derive(Debug, Clone)]
pub struct BlisStrategy {
    engine: GotoEngine,
}

impl BlisStrategy {
    /// Build with Phytium-derived blocking.
    pub fn new() -> Self {
        BlisStrategy {
            engine: GotoEngine::with_profile(LibraryProfile::blis()),
        }
    }

    /// Access the underlying engine.
    pub fn engine(&self) -> &GotoEngine {
        &self.engine
    }

    /// The thread grid BLIS would choose for a problem.
    pub fn grid_for(&self, m: usize, n: usize, k: usize, threads: usize) -> ThreadGrid {
        select_grid(m, n, k, threads, KernelShape::new(8, 12))
    }
}

impl Default for BlisStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> Strategy<S> for BlisStrategy {
    fn name(&self) -> &'static str {
        "BLIS"
    }

    fn gemm(
        &self,
        alpha: S,
        a: MatRef<'_, S>,
        b: MatRef<'_, S>,
        beta: S,
        c: MatMut<'_, S>,
        threads: usize,
    ) {
        if threads <= 1 {
            self.engine.gemm(alpha, a, b, beta, c);
        } else {
            let grid = self.grid_for(a.rows(), b.cols(), a.cols(), threads);
            gemm_parallel_grid(&self.engine, grid, alpha, a, b, beta, c);
        }
    }

    fn sim(&self, m: usize, n: usize, k: usize, threads: usize) -> SimJob {
        build_sim(&self.engine, m, n, k, threads)
    }
}

#[allow(clippy::needless_range_loop)]
fn build_sim(engine: &GotoEngine, m: usize, n: usize, k: usize, threads: usize) -> SimJob {
    assert!(m > 0 && n > 0 && k > 0, "empty GEMM");
    let threads = threads.max(1);
    let profile = &engine.profile;
    let bp = engine.blocking.clipped(m, n, k);
    let (mr, nr) = (profile.main.mr(), profile.main.nr());
    let grid = select_grid(m, n, k, threads, profile.main.shape);
    let mut lay = GemmLayout::for_threads(m, n, k, threads);

    let tid = |jc_i: usize, ic_i: usize, jr_i: usize, ir_i: usize| {
        ((jc_i * grid.ic + ic_i) * grid.jr + jr_i) * grid.ir + ir_i
    };

    let n_chunks = split_ranges(n, grid.jc);
    let m_chunks = split_ranges(m, grid.ic);

    // One shared B̃ per jc group (homed on the group leader's panel),
    // one shared Ã per (jc, ic) group, and a padded-tile scratch C per
    // thread (BLIS writes padded register tiles to a temporary).
    let bpack: Vec<u64> = (0..grid.jc)
        .map(|jc_i| lay.alloc_local(((bp.nc + nr) * bp.kc) as u64 * ELEM, tid(jc_i, 0, 0, 0)))
        .collect();
    let mut apack = vec![vec![0u64; grid.ic]; grid.jc];
    for (jc_i, row) in apack.iter_mut().enumerate() {
        for (ic_i, slot) in row.iter_mut().enumerate() {
            *slot = lay.alloc_local(((bp.mc + mr) * bp.kc) as u64 * ELEM, tid(jc_i, ic_i, 0, 0));
        }
    }
    let cscratch: Vec<u64> = (0..threads)
        .map(|t| lay.alloc_local((mr * nr) as u64 * ELEM, t))
        .collect();

    let mut progs: Vec<Vec<MacroOp>> = vec![Vec::new(); threads];
    let mut next_barrier = 0u32;

    for jc_i in 0..grid.jc {
        let (j0, n_jc) = n_chunks[jc_i];
        if n_jc == 0 {
            continue;
        }
        // Every thread in the jc group shares the B̃ cohort.
        let cohort: Vec<usize> = (0..grid.ic)
            .flat_map(|ic_i| {
                (0..grid.jr).flat_map(move |jr_i| (0..grid.ir).map(move |ir_i| (ic_i, jr_i, ir_i)))
            })
            .map(|(ic_i, jr_i, ir_i)| tid(jc_i, ic_i, jr_i, ir_i))
            .collect();

        let mut jj = 0;
        while jj < n_jc {
            let nc_cur = bp.nc.min(n_jc - jj);
            let n_tiles = tile_dimension(nc_cur, nr, profile.edge, &profile.n_steps);
            let mut kk = 0;
            while kk < k {
                let kc_cur = bp.kc.min(k - kk);
                let mut b_offs = Vec::with_capacity(n_tiles.len());
                let mut off = 0u64;
                for jt in &n_tiles {
                    b_offs.push(off);
                    off += (jt.kernel * kc_cur) as u64 * ELEM;
                }
                // Cooperative B packing across the cohort.
                for (s, jt) in n_tiles.iter().enumerate() {
                    let t = cohort[s % cohort.len()];
                    progs[t].push(MacroOp::PackB(PackBSliverOp {
                        src: lay.b_addr(kk, j0 + jj + jt.offset),
                        ldb: lay.ldb,
                        kc: kc_cur,
                        cols: jt.logical,
                        pad_to: jt.kernel,
                        dst: bpack[jc_i] + b_offs[s],
                        phase: Phase::PackB,
                        src_row_major: false,
                    }));
                }
                next_barrier += 1;
                for &t in &cohort {
                    progs[t].push(MacroOp::Barrier {
                        id: next_barrier,
                        participants: cohort.len(),
                    });
                }

                for ic_i in 0..grid.ic {
                    let (i0, m_ic) = m_chunks[ic_i];
                    if m_ic == 0 {
                        continue;
                    }
                    let subgroup: Vec<usize> = (0..grid.jr)
                        .flat_map(|jr_i| (0..grid.ir).map(move |ir_i| (jr_i, ir_i)))
                        .map(|(jr_i, ir_i)| tid(jc_i, ic_i, jr_i, ir_i))
                        .collect();
                    let mut ii = 0;
                    while ii < m_ic {
                        let mc_cur = bp.mc.min(m_ic - ii);
                        let m_tiles = tile_dimension(mc_cur, mr, profile.edge, &profile.m_steps);
                        let mut a_offs = Vec::with_capacity(m_tiles.len());
                        let mut aoff = 0u64;
                        for it in &m_tiles {
                            a_offs.push(aoff);
                            aoff += (it.kernel * kc_cur) as u64 * ELEM;
                        }
                        // Cooperative A packing across the subgroup.
                        for (ti, it) in m_tiles.iter().enumerate() {
                            let t = subgroup[ti % subgroup.len()];
                            progs[t].push(MacroOp::PackA(PackAPanelOp {
                                src: lay.a_addr(i0 + ii + it.offset, kk),
                                lda: lay.lda,
                                rows: it.logical,
                                kc: kc_cur,
                                pad_to: it.kernel,
                                dst: apack[jc_i][ic_i] + a_offs[ti],
                                phase: Phase::PackA,
                                src_row_major: false,
                            }));
                        }
                        next_barrier += 1;
                        for &t in &subgroup {
                            progs[t].push(MacroOp::Barrier {
                                id: next_barrier,
                                participants: subgroup.len(),
                            });
                        }
                        // jr splits the slivers, ir splits the panels.
                        let jr_assign = split_ranges(n_tiles.len(), grid.jr);
                        let ir_assign = split_ranges(m_tiles.len(), grid.ir);
                        for jr_i in 0..grid.jr {
                            let (js, jn) = jr_assign[jr_i];
                            for ir_i in 0..grid.ir {
                                let (is, in_) = ir_assign[ir_i];
                                let t = tid(jc_i, ic_i, jr_i, ir_i);
                                for s in js..js + jn {
                                    let jt = &n_tiles[s];
                                    for ti in is..is + in_ {
                                        let it = &m_tiles[ti];
                                        let padded =
                                            it.kernel != it.logical || jt.kernel != jt.logical;
                                        let c_base = if padded {
                                            cscratch[t]
                                        } else {
                                            lay.c_addr(i0 + ii + it.offset, j0 + jj + jt.offset)
                                        };
                                        let c_col_stride = if padded {
                                            (it.kernel as u64) * ELEM
                                        } else {
                                            lay.ldc
                                        };
                                        progs[t].push(MacroOp::Kernel(KernelTraceParams {
                                            desc: profile.main,
                                            kc: kc_cur,
                                            a_base: apack[jc_i][ic_i] + a_offs[ti],
                                            a_kstep: (it.kernel as u64) * ELEM,
                                            b_base: bpack[jc_i] + b_offs[s],
                                            b_kstep: (jt.kernel as u64) * ELEM,
                                            b_jstride: ELEM,
                                            c_base,
                                            c_col_stride,
                                            elem: ELEM,
                                            phase: if padded { Phase::Edge } else { Phase::Kernel },
                                        }));
                                    }
                                }
                            }
                        }
                        ii += mc_cur;
                    }
                }
                // End-of-kk synchronization for the cohort.
                next_barrier += 1;
                for &t in &cohort {
                    progs[t].push(MacroOp::Barrier {
                        id: next_barrier,
                        participants: cohort.len(),
                    });
                }
                kk += kc_cur;
            }
            jj += nc_cur;
        }
    }

    SimJob {
        programs: progs,
        useful_flops: 2.0 * m as f64 * n as f64 * k as f64,
        label: format!("BLIS {m}x{n}x{k} t{threads} grid {grid:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;
    use crate::naive::gemm_naive;

    #[test]
    fn native_matches_naive() {
        let s = BlisStrategy::new();
        let a = Mat::<f32>::random(27, 19, 1);
        let b = Mat::<f32>::random(19, 31, 2);
        let mut c = Mat::<f32>::random(27, 31, 3);
        let mut c_ref = c.clone();
        Strategy::<f32>::gemm(&s, 1.0, a.as_ref(), b.as_ref(), 0.5, c.as_mut(), 1);
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.5, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn native_parallel_matches_naive() {
        let s = BlisStrategy::new();
        let a = Mat::<f32>::random(48, 16, 4);
        let b = Mat::<f32>::random(16, 60, 5);
        let mut c = Mat::<f32>::zeros(48, 60);
        let mut c_ref = c.clone();
        Strategy::<f32>::gemm(&s, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut(), 8);
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn grid_avoids_small_dimensions() {
        let s = BlisStrategy::new();
        let g = s.grid_for(16, 4096, 256, 64);
        assert!(g.m_ways() <= 2, "M=16 should not be split 64 ways: {g:?}");
        assert_eq!(g.threads(), 64);
    }

    #[test]
    fn sim_single_thread_runs() {
        let s = BlisStrategy::new();
        let report = Strategy::<f32>::sim(&s, 24, 24, 12, 1).run();
        assert!(report.total_fmas() > 0);
        assert_eq!(report.cores.len(), 1);
    }

    #[test]
    fn sim_multithread_all_cores_work_and_sync() {
        let s = BlisStrategy::new();
        let report = Strategy::<f32>::sim(&s, 64, 96, 32, 8).run();
        assert_eq!(report.cores.len(), 8);
        assert!(report.total_breakdown().get(Phase::Sync) > 0);
        // Every core retired something.
        for (i, c) in report.cores.iter().enumerate() {
            assert!(c.retired > 0, "core {i} idle");
        }
    }

    #[test]
    fn sim_padded_tiles_tagged_edge() {
        let s = BlisStrategy::new();
        // 9x13: both dimensions have remainders against 8x12.
        let report = Strategy::<f32>::sim(&s, 9, 13, 16, 1).run();
        assert!(report.total_breakdown().get(Phase::Edge) > 0);
        let aligned = Strategy::<f32>::sim(&s, 16, 24, 16, 1).run();
        assert_eq!(aligned.total_breakdown().get(Phase::Edge), 0);
    }

    #[test]
    fn sim_barrier_cohorts_are_consistent() {
        // Would deadlock (and panic) if any barrier were mismatched.
        let s = BlisStrategy::new();
        for threads in [2, 4, 8, 16] {
            let report = Strategy::<f32>::sim(&s, 40, 72, 24, threads).run();
            assert!(report.cycles > 0);
        }
    }
}
