//! GEMM strategies of the four BLAS libraries the paper evaluates.
//!
//! Each strategy — [`openblas`], [`blis`], [`blasfeo`], [`eigen`] —
//! reimplements the library's documented approach (Table I / §II-C of
//! the paper) against two substrates:
//!
//! * **native**: real arithmetic on the host, via the shared Goto
//!   engine ([`engine`]) and thread decompositions ([`parallel`]),
//!   validated against the naive triple loop ([`naive`]);
//! * **simulated**: macro-op programs ([`sim`]) that expand into
//!   ARMv8-like instruction streams and run on the `smm-simarch`
//!   Phytium 2000+ model with per-phase cycle accounting — the
//!   substrate all figures and tables are regenerated on.
//!
//! Matrix storage (column-major views and BLASFEO's panel-major format)
//! lives in [`matrix`]; packing in [`pack`].

#![deny(missing_docs)]

pub mod arena;
pub mod blasfeo;
pub mod blis;
pub mod eigen;
pub mod engine;
pub mod flight;
pub mod matrix;
pub mod naive;
pub mod openblas;
pub mod pack;
pub mod parallel;
pub mod pool;
pub mod sim;
pub mod strategy;

pub use blasfeo::BlasfeoStrategy;
pub use blis::BlisStrategy;
pub use eigen::EigenStrategy;
pub use engine::GotoEngine;
pub use flight::{EventKind, FlightRecorder, SpanEvent};
pub use matrix::{Mat, MatMut, MatRef, PanelMatrix};
pub use naive::gemm_naive;
pub use openblas::OpenBlasStrategy;
pub use pool::TaskPool;
pub use sim::{GemmLayout, MacroOp, ProgramSource, SimJob};
pub use strategy::{all_strategies, Strategy};
