//! The common interface of the four library strategies.

use smm_kernels::Scalar;

use crate::matrix::{MatMut, MatRef};
use crate::sim::SimJob;

/// A GEMM implementation strategy, runnable natively (real arithmetic
/// on the host) and as a simulation program (cycle accounting on the
/// Phytium 2000+ model).
pub trait Strategy<S: Scalar>: Send + Sync {
    /// Library name as in the paper.
    fn name(&self) -> &'static str;

    /// Does the strategy provide multi-threaded SMM routines?
    /// (BLASFEO does not — §II-C.)
    fn supports_threads(&self) -> bool {
        true
    }

    /// `C = alpha·A·B + beta·C` on the host with `threads` threads.
    fn gemm(
        &self,
        alpha: S,
        a: MatRef<'_, S>,
        b: MatRef<'_, S>,
        beta: S,
        c: MatMut<'_, S>,
        threads: usize,
    );

    /// Build the simulation program for an `m × n × k` single-precision
    /// GEMM on `threads` simulated cores.
    fn sim(&self, m: usize, n: usize, k: usize, threads: usize) -> SimJob;
}

/// All four strategies, in the paper's order.
pub fn all_strategies<S: Scalar>() -> Vec<Box<dyn Strategy<S>>> {
    vec![
        Box::new(crate::openblas::OpenBlasStrategy::new()),
        Box::new(crate::blis::BlisStrategy::new()),
        Box::new(crate::blasfeo::BlasfeoStrategy::new()),
        Box::new(crate::eigen::EigenStrategy::new()),
    ]
}
