//! Simulation programs: per-core lists of macro-operations that expand
//! lazily into instruction streams for the `smm-simarch` machine.
//!
//! A full GEMM trace can run to hundreds of millions of instructions;
//! a [`MacroOp`] list is only as long as the number of packing panels,
//! micro-tiles and barriers, and each op expands on demand inside
//! [`ProgramSource::next_chunk`].

use smm_kernels::trace_gen::{emit_kernel, KernelTraceParams};
use smm_simarch::isa::{s, v, x, Inst};
use smm_simarch::phase::Phase;
use smm_simarch::trace::InstSource;

/// Bytes per single-precision element (the simulated precision).
pub const ELEM: u64 = 4;

/// Packing of one `rows × kc` panel of `A` into an `mr`-row packed
/// panel (zero-padded to `pad_to` rows).
#[derive(Debug, Clone, Copy)]
pub struct PackAPanelOp {
    /// Address of `A(i0, p0)`.
    pub src: u64,
    /// Bytes between consecutive columns of `A`.
    pub lda: u64,
    /// Real rows to pack.
    pub rows: usize,
    /// Columns (k extent).
    pub kc: usize,
    /// Packed panel row count (>= rows; excess is zero-filled).
    pub pad_to: usize,
    /// Destination base address (contiguous `pad_to × kc`).
    pub dst: u64,
    /// Phase tag.
    pub phase: Phase,
    /// Are source rows contiguous (column-major A) or strided by `lda`
    /// (row-major A, Eigen)?
    pub src_row_major: bool,
}

/// Packing of one `kc × cols` sliver of `B` into an `nr`-column packed
/// sliver (zero-padded to `pad_to` columns).
#[derive(Debug, Clone, Copy)]
pub struct PackBSliverOp {
    /// Address of `B(p0, j0)`.
    pub src: u64,
    /// Bytes between consecutive columns of `B`.
    pub ldb: u64,
    /// k extent.
    pub kc: usize,
    /// Real columns to pack.
    pub cols: usize,
    /// Packed sliver column count.
    pub pad_to: usize,
    /// Destination base address (contiguous `kc × pad_to`).
    pub dst: u64,
    /// Phase tag.
    pub phase: Phase,
    /// Row-major `B` makes the gather contiguous (Eigen's cheap side).
    pub src_row_major: bool,
}

/// One macro-operation of a simulated GEMM.
#[derive(Debug, Clone, Copy)]
pub enum MacroOp {
    /// A micro-kernel invocation.
    Kernel(KernelTraceParams),
    /// Pack an `A` panel.
    PackA(PackAPanelOp),
    /// Pack a `B` sliver.
    PackB(PackBSliverOp),
    /// Synchronize `participants` cores on barrier `id`.
    Barrier {
        /// Machine-unique barrier id.
        id: u32,
        /// Number of cores that must arrive.
        participants: usize,
    },
    /// Plain bookkeeping (loop setup, plan dispatch).
    Iops {
        /// Number of integer ops to emit.
        n: usize,
        /// Phase tag.
        phase: Phase,
    },
}

fn emit_pack_a(out: &mut Vec<Inst>, op: &PackAPanelOp) {
    let full = op.rows / 4;
    let rem = op.rows % 4;
    let pad_vecs = op.pad_to.div_ceil(4);
    for p in 0..op.kc {
        let dst_col = op.dst + (p * op.pad_to) as u64 * ELEM;
        if op.src_row_major {
            // Row-major A: gathering a column means striding by `lda`.
            for i in 0..op.rows {
                out.push(Inst::ld_scalar(
                    s((i % 16) as u8),
                    op.src + i as u64 * op.lda + p as u64 * ELEM,
                    op.phase,
                ));
            }
            for i in 0..op.rows {
                out.push(Inst::st_scalar(
                    s((i % 16) as u8),
                    dst_col + i as u64 * ELEM,
                    op.phase,
                ));
            }
            // Zero-fill padding rows.
            for vi in op.rows.div_ceil(4)..pad_vecs {
                out.push(Inst::st_vec(v(8), dst_col + (vi * 16) as u64, op.phase));
            }
        } else {
            let src_col = op.src + p as u64 * op.lda;
            for i in 0..full {
                out.push(Inst::ld_vec(
                    v((i % 8) as u8),
                    src_col + (i * 16) as u64,
                    op.phase,
                ));
            }
            for r in 0..rem {
                out.push(Inst::ld_scalar(
                    s(r as u8),
                    src_col + (full * 16) as u64 + r as u64 * ELEM,
                    op.phase,
                ));
            }
            // Stores cover the padded width; the padding lanes reuse
            // whatever is in the staging registers conceptually zeroed
            // (cost-equivalent).
            for vi in 0..pad_vecs {
                out.push(Inst::st_vec(
                    v((vi % 8) as u8),
                    dst_col + (vi * 16) as u64,
                    op.phase,
                ));
            }
        }
        out.push(Inst::iop(x(0), op.phase));
        out.push(Inst::branch(op.phase));
    }
}

fn emit_pack_b(out: &mut Vec<Inst>, op: &PackBSliverOp) {
    let pad_vecs = op.pad_to.div_ceil(4);
    for p in 0..op.kc {
        let dst_row = op.dst + (p * op.pad_to) as u64 * ELEM;
        if op.src_row_major {
            // Row-major B: row p's columns are contiguous.
            let src_row = op.src + p as u64 * op.ldb;
            for jv in 0..op.cols.div_ceil(4) {
                out.push(Inst::ld_vec(
                    v((jv % 8) as u8),
                    src_row + (jv * 16) as u64,
                    op.phase,
                ));
            }
        } else {
            // Column-major B: gathering row p strides by `ldb` — the
            // expensive scalar gather that makes PackB dominate
            // (Table II).
            for j in 0..op.cols {
                out.push(Inst::ld_scalar(
                    s((j % 16) as u8),
                    op.src + j as u64 * op.ldb + p as u64 * ELEM,
                    op.phase,
                ));
            }
        }
        for vi in 0..pad_vecs {
            out.push(Inst::st_vec(
                v((vi % 8) as u8),
                dst_row + (vi * 16) as u64,
                op.phase,
            ));
        }
        out.push(Inst::iop(x(0), op.phase));
        out.push(Inst::branch(op.phase));
    }
}

/// Expand one macro-op into instructions.
pub fn expand(out: &mut Vec<Inst>, op: &MacroOp) {
    match op {
        MacroOp::Kernel(p) => emit_kernel(out, p),
        MacroOp::PackA(p) => emit_pack_a(out, p),
        MacroOp::PackB(p) => emit_pack_b(out, p),
        MacroOp::Barrier { id, participants } => out.push(Inst::barrier(*id, *participants)),
        MacroOp::Iops { n, phase } => {
            for _ in 0..*n {
                out.push(Inst::iop(x(1), *phase));
            }
        }
    }
}

/// Simulated-address layout of one GEMM's operands.
///
/// Shared matrices are homed on NUMA panel 0 (first-touch by the master
/// thread), which is exactly the asymmetry the paper blames for part of
/// the multi-threaded kernel-efficiency loss; per-thread packed buffers
/// are allocated on each thread's own panel via [`GemmLayout::alloc_local`].
pub struct GemmLayout {
    /// Problem shape.
    pub m: usize,
    /// Columns of `C` / `B`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Base address of `A`.
    pub a: u64,
    /// Base address of `B`.
    pub b: u64,
    /// Base address of `C`.
    pub c: u64,
    /// Column stride of `A` in bytes.
    pub lda: u64,
    /// Column stride of `B` in bytes.
    pub ldb: u64,
    /// Column stride of `C` in bytes.
    pub ldc: u64,
    alloc: smm_simarch::memory::SimAlloc,
}

impl GemmLayout {
    /// Column-major operands on panel 0 (single-threaded runs: local to
    /// core 0, the first-touch placement).
    pub fn col_major(m: usize, n: usize, k: usize) -> Self {
        let mut alloc = smm_simarch::memory::SimAlloc::new(8);
        let a = alloc.alloc_on((m * k) as u64 * ELEM, 0);
        let b = alloc.alloc_on((k * n) as u64 * ELEM, 0);
        let c = alloc.alloc_on((m * n) as u64 * ELEM, 0);
        GemmLayout {
            m,
            n,
            k,
            a,
            b,
            c,
            lda: m as u64 * ELEM,
            ldb: k as u64 * ELEM,
            ldc: m as u64 * ELEM,
            alloc,
        }
    }

    /// Column-major operands page-interleaved across the 8 panels —
    /// the placement a multi-threaded application gets from parallel
    /// initialization or `numactl --interleave`, spreading DRAM channel
    /// load. Used for multi-threaded simulations.
    pub fn col_major_interleaved(m: usize, n: usize, k: usize) -> Self {
        let mut alloc = smm_simarch::memory::SimAlloc::new(8);
        let a = alloc.alloc_interleaved((m * k) as u64 * ELEM);
        let b = alloc.alloc_interleaved((k * n) as u64 * ELEM);
        let c = alloc.alloc_interleaved((m * n) as u64 * ELEM);
        GemmLayout {
            m,
            n,
            k,
            a,
            b,
            c,
            lda: m as u64 * ELEM,
            ldb: k as u64 * ELEM,
            ldc: m as u64 * ELEM,
            alloc,
        }
    }

    /// Layout appropriate for a thread count: panel-0 local when
    /// single-threaded, page-interleaved otherwise.
    pub fn for_threads(m: usize, n: usize, k: usize, threads: usize) -> Self {
        if threads <= 1 {
            Self::col_major(m, n, k)
        } else {
            Self::col_major_interleaved(m, n, k)
        }
    }

    /// Address of `A(i, p)` (column-major).
    pub fn a_addr(&self, i: usize, p: usize) -> u64 {
        self.a + p as u64 * self.lda + i as u64 * ELEM
    }

    /// Address of `B(p, j)` (column-major).
    pub fn b_addr(&self, p: usize, j: usize) -> u64 {
        self.b + j as u64 * self.ldb + p as u64 * ELEM
    }

    /// Address of `C(i, j)` (column-major).
    pub fn c_addr(&self, i: usize, j: usize) -> u64 {
        self.c + j as u64 * self.ldc + i as u64 * ELEM
    }

    /// Allocate a per-thread buffer on the NUMA panel local to `core`
    /// (8 cores per panel).
    pub fn alloc_local(&mut self, bytes: u64, core: usize) -> u64 {
        self.alloc.alloc_on(bytes, (core / 8) % 8)
    }
}

/// An [`InstSource`] over a macro-op program.
pub struct ProgramSource {
    ops: std::vec::IntoIter<MacroOp>,
}

impl ProgramSource {
    /// Wrap a per-core program.
    pub fn new(ops: Vec<MacroOp>) -> Self {
        ProgramSource {
            ops: ops.into_iter(),
        }
    }
}

impl InstSource for ProgramSource {
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
        let before = out.len();
        // Expand ops until the chunk is non-trivial (barriers expand to
        // a single instruction; keep them in their own chunk is fine).
        for op in self.ops.by_ref() {
            expand(out, &op);
            if out.len() > before || matches!(op, MacroOp::Barrier { .. }) {
                break;
            }
        }
        out.len() > before
    }
}

/// A complete simulated GEMM job: one program per core plus metadata.
pub struct SimJob {
    /// Per-core macro programs (length = simulated thread count).
    pub programs: Vec<Vec<MacroOp>>,
    /// Useful flops (`2·M·N·K`), excluding padding waste.
    pub useful_flops: f64,
    /// Human-readable label.
    pub label: String,
}

impl SimJob {
    /// Run the job on the stock Phytium 2000+ model.
    pub fn run(self) -> smm_simarch::machine::SimReport {
        self.run_on(
            smm_simarch::cpu::PipelineConfig::phytium_core(),
            smm_simarch::memory::MemConfig::phytium_2000_plus(),
        )
    }

    /// Run the job on a modified machine (architecture ablations:
    /// replacement policy, prefetcher, DRAM bandwidth, pipeline widths).
    pub fn run_on(
        self,
        pipeline: smm_simarch::cpu::PipelineConfig,
        mem: smm_simarch::memory::MemConfig,
    ) -> smm_simarch::machine::SimReport {
        use smm_simarch::machine::Machine;
        let sources: Vec<Box<dyn InstSource>> = self
            .programs
            .into_iter()
            .map(|p| Box::new(ProgramSource::new(p)) as Box<dyn InstSource>)
            .collect();
        let mut machine = Machine::new(pipeline, mem, sources);
        machine.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_simarch::isa::Op;
    use smm_simarch::trace::collect_source;

    #[test]
    fn pack_a_col_major_uses_vector_loads() {
        let op = MacroOp::PackA(PackAPanelOp {
            src: 0x1000,
            lda: 256,
            rows: 16,
            kc: 8,
            pad_to: 16,
            dst: 0x8000,
            phase: Phase::PackA,
            src_row_major: false,
        });
        let insts = collect_source(ProgramSource::new(vec![op]));
        let loads = insts.iter().filter(|i| i.op == Op::LdVec).count();
        let stores = insts.iter().filter(|i| i.op == Op::StVec).count();
        assert_eq!(loads, 4 * 8);
        assert_eq!(stores, 4 * 8);
    }

    #[test]
    fn pack_b_col_major_gathers_scalars() {
        let op = MacroOp::PackB(PackBSliverOp {
            src: 0x1000,
            ldb: 512,
            kc: 8,
            cols: 4,
            pad_to: 4,
            dst: 0x8000,
            phase: Phase::PackB,
            src_row_major: false,
        });
        let insts = collect_source(ProgramSource::new(vec![op]));
        let scalar_loads = insts.iter().filter(|i| i.op == Op::LdScalar).count();
        assert_eq!(scalar_loads, 4 * 8, "one strided scalar load per element");
    }

    #[test]
    fn pack_b_row_major_is_vectorized() {
        let op = MacroOp::PackB(PackBSliverOp {
            src: 0x1000,
            ldb: 512,
            kc: 8,
            cols: 8,
            pad_to: 8,
            dst: 0x8000,
            phase: Phase::PackB,
            src_row_major: true,
        });
        let insts = collect_source(ProgramSource::new(vec![op]));
        assert_eq!(insts.iter().filter(|i| i.op == Op::LdVec).count(), 2 * 8);
        assert_eq!(insts.iter().filter(|i| i.op == Op::LdScalar).count(), 0);
    }

    #[test]
    fn padding_emits_extra_stores_without_loads() {
        let op = MacroOp::PackA(PackAPanelOp {
            src: 0x1000,
            lda: 64,
            rows: 3,
            kc: 2,
            pad_to: 8,
            dst: 0x8000,
            phase: Phase::PackA,
            src_row_major: false,
        });
        let insts = collect_source(ProgramSource::new(vec![op]));
        let stores = insts.iter().filter(|i| i.op == Op::StVec).count();
        assert_eq!(stores, 2 * 2, "padded width 8 = 2 vector stores per column");
    }

    #[test]
    fn program_source_streams_all_ops() {
        let ops = vec![
            MacroOp::Iops {
                n: 3,
                phase: Phase::Overhead,
            },
            MacroOp::Barrier {
                id: 1,
                participants: 1,
            },
            MacroOp::Iops {
                n: 2,
                phase: Phase::Overhead,
            },
        ];
        let insts = collect_source(ProgramSource::new(ops));
        assert_eq!(insts.len(), 6);
        assert!(matches!(insts[3].op, Op::Barrier(1)));
    }

    #[test]
    fn pack_addresses_walk_the_source() {
        let op = MacroOp::PackB(PackBSliverOp {
            src: 0,
            ldb: 400,
            kc: 3,
            cols: 2,
            pad_to: 4,
            dst: 0x8000,
            phase: Phase::PackB,
            src_row_major: false,
        });
        let insts = collect_source(ProgramSource::new(vec![op]));
        let addrs: Vec<u64> = insts
            .iter()
            .filter(|i| i.op == Op::LdScalar)
            .map(|i| i.addr)
            .collect();
        // p=0: j=0 -> 0, j=1 -> 400; p=1: 4, 404; p=2: 8, 408.
        assert_eq!(addrs, vec![0, 400, 4, 404, 8, 408]);
    }
}
