//! Reusable packing arenas: size-classed buffer recycling for the
//! GEMM hot path.
//!
//! §III-A of the paper shows that for small `M`, `N`, `K` per-call
//! memory traffic — not FLOPs — bounds achievable performance, and
//! Table II attributes most of the remaining gap to packing overhead.
//! Heap-allocating fresh Ã/B̃ buffers on every call adds an allocator
//! round-trip (and page faults on first touch) to exactly the calls
//! that are too small to amortize it. BLASFEO's pack-once discipline
//! and LIBXSMM's persistent buffers both sidestep this; this module is
//! the analogous mechanism for our runtime: a thread-local, size-classed
//! free list from which packing buffers are checked out per call and
//! returned on drop, so repeated same-shape calls (the paper's
//! motivating DNN/batched workload) allocate **zero bytes** after
//! warm-up.
//!
//! Buffers are checked out by the *ceiling* power-of-two class of the
//! requested capacity and returned under the *floor* class of their
//! final capacity, so any recycled buffer always satisfies the class
//! it is popped for. Pool workers are persistent threads, hence each
//! worker's arena stays warm across calls.
//!
//! Global relaxed counters ([`stats`]) make the reuse observable:
//! the throughput bench and the CI perf-smoke job gate on
//! `hits / (hits + misses)` and on `alloc_bytes` staying flat after
//! warm-up.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

use smm_sync::sync::atomic::{AtomicU64, Ordering};

/// Largest recyclable size class: `2^24` elements (128 MiB of `f64`).
/// Larger checkouts still work but are freed on drop, so a single
/// outsized call cannot pin memory in every worker's free list.
const MAX_CLASS: usize = 24;

/// Buffers kept per (type, class); beyond this, drops free eagerly.
const PER_CLASS_CAP: usize = 8;

// Arena counters; relaxed — independent monotonic counters with no
// ordering relationship to the buffer hand-off (which is thread-local),
// read only for reporting and bench gates.
static ARENA_HITS: AtomicU64 = AtomicU64::new(0);
static ARENA_MISSES: AtomicU64 = AtomicU64::new(0);
static ARENA_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the global arena counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Checkouts served from a recycled buffer.
    pub hits: u64,
    /// Checkouts that had to allocate.
    pub misses: u64,
    /// Bytes handed to the allocator (fresh buffers + in-place growth).
    pub alloc_bytes: u64,
}

impl ArenaStats {
    /// Fraction of checkouts served without allocating (1.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Read the global arena counters.
pub fn stats() -> ArenaStats {
    ArenaStats {
        hits: ARENA_HITS.load(Ordering::Relaxed),
        misses: ARENA_MISSES.load(Ordering::Relaxed),
        alloc_bytes: ARENA_ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Zero the global arena counters (bench/test warm-up boundary).
pub fn reset_stats() {
    ARENA_HITS.store(0, Ordering::Relaxed);
    ARENA_MISSES.store(0, Ordering::Relaxed);
    ARENA_ALLOC_BYTES.store(0, Ordering::Relaxed);
}

/// Ceiling power-of-two class: smallest `c` with `2^c >= cap`.
fn class_ceil(cap: usize) -> usize {
    if cap <= 1 {
        0
    } else {
        (usize::BITS - (cap - 1).leading_zeros()) as usize
    }
}

/// Floor power-of-two class: largest `c` with `2^c <= cap` (cap >= 1).
fn class_floor(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

/// Per-type free lists, indexed by size class.
struct Lists<T> {
    classes: Vec<Vec<Vec<T>>>,
}

impl<T> Lists<T> {
    fn new() -> Self {
        Lists {
            classes: (0..=MAX_CLASS).map(|_| Vec::new()).collect(),
        }
    }
}

thread_local! {
    /// One slot per element type ever checked out on this thread.
    static ARENA: RefCell<Vec<(TypeId, Box<dyn Any>)>> = const { RefCell::new(Vec::new()) };
}

fn with_lists<T: 'static, R>(f: impl FnOnce(&mut Lists<T>) -> R) -> Option<R> {
    ARENA
        .try_with(|cell| {
            let mut slots = cell.borrow_mut();
            let id = TypeId::of::<T>();
            let idx = match slots.iter().position(|(t, _)| *t == id) {
                Some(i) => i,
                None => {
                    slots.push((id, Box::new(Lists::<T>::new())));
                    slots.len() - 1
                }
            };
            let lists = slots[idx]
                .1
                .downcast_mut::<Lists<T>>()
                .expect("arena slot type confusion");
            f(lists)
        })
        .ok()
}

/// An arena-backed buffer: behaves as a `Vec<T>` (starts empty) and
/// returns its storage to the thread-local free list on drop.
pub struct PackBuf<T: 'static> {
    buf: Vec<T>,
    start_cap: usize,
}

impl<T: 'static> Deref for PackBuf<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.buf
    }
}

impl<T: 'static> DerefMut for PackBuf<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<T: 'static> std::fmt::Debug for PackBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PackBuf(len={}, cap={})",
            self.buf.len(),
            self.buf.capacity()
        )
    }
}

impl<T: 'static> Drop for PackBuf<T> {
    fn drop(&mut self) {
        let cap = self.buf.capacity();
        if cap > self.start_cap {
            // The buffer grew past its checkout estimate: those bytes
            // did hit the allocator this call.
            ARENA_ALLOC_BYTES.fetch_add(
                ((cap - self.start_cap) * std::mem::size_of::<T>()) as u64,
                Ordering::Relaxed,
            );
        }
        if cap == 0 {
            return;
        }
        let class = class_floor(cap);
        if class > MAX_CLASS {
            return;
        }
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        // During thread teardown the TLS slot may already be gone
        // (try_with fails); the buffer then just frees normally.
        with_lists::<T, _>(|lists| {
            let list = &mut lists.classes[class];
            if list.len() < PER_CLASS_CAP {
                list.push(buf);
            }
        });
    }
}

/// Check out a buffer with capacity ≥ `min_cap` from the current
/// thread's arena, allocating (and counting a miss) only when no
/// recycled buffer of the right class exists.
pub fn checkout<T: 'static>(min_cap: usize) -> PackBuf<T> {
    let class = class_ceil(min_cap);
    let recycled = if class <= MAX_CLASS {
        with_lists::<T, _>(|lists| lists.classes[class].pop()).flatten()
    } else {
        None
    };
    match recycled {
        Some(buf) => {
            debug_assert!(buf.capacity() >= min_cap);
            ARENA_HITS.fetch_add(1, Ordering::Relaxed);
            PackBuf {
                start_cap: buf.capacity(),
                buf,
            }
        }
        None => {
            let cap = if class <= MAX_CLASS {
                1usize << class
            } else {
                min_cap
            };
            ARENA_MISSES.fetch_add(1, Ordering::Relaxed);
            ARENA_ALLOC_BYTES.fetch_add((cap * std::mem::size_of::<T>()) as u64, Ordering::Relaxed);
            let buf = Vec::with_capacity(cap);
            PackBuf {
                start_cap: buf.capacity(),
                buf,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_round_correctly() {
        assert_eq!(class_ceil(0), 0);
        assert_eq!(class_ceil(1), 0);
        assert_eq!(class_ceil(2), 1);
        assert_eq!(class_ceil(3), 2);
        assert_eq!(class_ceil(1024), 10);
        assert_eq!(class_ceil(1025), 11);
        assert_eq!(class_floor(1), 0);
        assert_eq!(class_floor(3), 1);
        assert_eq!(class_floor(1024), 10);
        assert_eq!(class_floor(1600), 10);
    }

    #[test]
    fn checkout_returns_empty_buffer_with_capacity() {
        let b = checkout::<f32>(100);
        assert!(b.is_empty());
        assert!(b.capacity() >= 100);
    }

    #[test]
    fn second_same_class_checkout_is_a_hit() {
        // Same thread, sequential: drop returns the buffer, the next
        // checkout of the same class must reuse it.
        let before = stats();
        let b = checkout::<u32>(777);
        let ptr = b.as_ptr();
        drop(b);
        let b2 = checkout::<u32>(777);
        assert_eq!(b2.as_ptr(), ptr, "storage must be recycled");
        let after = stats();
        assert!(after.hits > before.hits);
    }

    #[test]
    fn distinct_types_do_not_share_buffers() {
        let bf = checkout::<f64>(64);
        let bu = checkout::<usize>(64);
        assert!(bf.capacity() >= 64 && bu.capacity() >= 64);
    }

    #[test]
    fn grown_buffer_recycles_under_its_new_class() {
        let mut b = checkout::<u8>(16);
        b.resize(5000, 0); // grows past the class-4 estimate
        drop(b);
        let b2 = checkout::<u8>(5000);
        assert!(b2.capacity() >= 5000);
    }

    #[test]
    fn hit_rate_is_one_when_idle() {
        assert_eq!(ArenaStats::default().hit_rate(), 1.0);
        let s = ArenaStats {
            hits: 99,
            misses: 1,
            alloc_bytes: 0,
        };
        assert!((s.hit_rate() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn oversized_checkouts_work_but_are_not_cached() {
        let huge = (1usize << MAX_CLASS) + 1;
        let b = checkout::<u8>(huge);
        assert!(b.capacity() >= huge);
    }
}
