//! A persistent worker pool for small-GEMM parallelism.
//!
//! §III-D of the paper shows that for small shapes the *mechanism* of
//! parallelism — thread creation, synchronization barriers — can cost
//! more than the multiplication itself. The original native paths here
//! spawned fresh `std::thread`s on every call; this module replaces
//! them with a pool that is spawned once and parked between calls, so
//! repeated small GEMMs pay only a queue push and a wakeup.
//!
//! The design is *scoped task injection*: [`TaskPool::run_scoped`]
//! accepts closures that borrow the caller's stack (operand views,
//! plan tables) and blocks until every injected task has completed, so
//! no `'static` bound leaks into the GEMM signatures. The caller also
//! helps drain the queue while it waits, which keeps a nested
//! `run_scoped` (a pooled task that itself fans out) deadlock-free and
//! lets even a zero-worker pool make progress inline.
//!
//! Thread-count *decisions* stay where they were — in the plan's
//! model-driven grid selection; the pool only changes how the chosen
//! ways are executed.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use smm_sync::sync::atomic::{AtomicU64, Ordering};
use smm_sync::sync::thread::JoinHandle;
use smm_sync::sync::{Condvar, Mutex};

/// A type-erased injected task. Lifetime-erased from `'scope` by
/// [`TaskPool::run_scoped`], which guarantees completion-before-return.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Snapshot of pool activity counters, returned by [`TaskPool::stats`].
///
/// These are the §III-D observables: how deep the injection queue gets,
/// how often parked workers are woken, how much work the submitting
/// caller drains inline while it waits, and how long workers spend
/// parked. Counters are cumulative over the pool's lifetime and
/// recorded with relaxed atomics off the job execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Persistent worker threads.
    pub workers: usize,
    /// High-water mark of queued (not yet started) jobs.
    pub queue_highwater: u64,
    /// Times a parked worker was woken by new work (or shutdown).
    pub worker_wakeups: u64,
    /// Jobs executed by pool workers.
    pub worker_tasks: u64,
    /// Jobs executed inline by a waiting `run_scoped` caller.
    pub inline_drained: u64,
    /// Cumulative nanoseconds workers spent parked on the condvar.
    pub park_ns: u64,
    /// `run_scoped` calls that fanned out through the queue (single
    /// tasks and zero-worker pools run inline and are not counted) —
    /// with `worker_tasks`/`inline_drained` this gives the mean fan-out
    /// per parallel section, the serving layer's dispatch observable.
    pub scoped_calls: u64,
}

/// The queue shared between pool handles and workers.
struct Shared {
    queue: Mutex<QueueState>,
    work_cv: Condvar,
    /// Activity counters; relaxed, updated outside job execution.
    queue_highwater: AtomicU64,
    worker_wakeups: AtomicU64,
    worker_tasks: AtomicU64,
    inline_drained: AtomicU64,
    park_ns: AtomicU64,
    scoped_calls: AtomicU64,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

impl Shared {
    /// Pop one job without blocking.
    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().jobs.pop_front()
    }
}

/// Completion latch for one `run_scoped` call; lives on the caller's
/// stack and is borrowed (lifetime-erased) by every task of the scope.
struct Latch {
    state: Mutex<LatchState>,
    done_cv: Condvar,
}

struct LatchState {
    remaining: usize,
    /// First panic payload observed in this scope, re-thrown on the
    /// caller thread so `should_panic` semantics survive pooling.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: n,
                panic: None,
            }),
            done_cv: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.state.lock().unwrap();
        if st.panic.is_none() {
            st.panic = panic;
        } else {
            drop(panic);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.done_cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.done_cv.wait(st).unwrap();
        }
        if let Some(payload) = st.panic.take() {
            drop(st);
            resume_unwind(payload);
        }
    }
}

/// Raw pointer wrapper so result slots can cross the worker boundary.
struct SendPtr<T>(*mut T);
// SAFETY: the pointee is one slot of the `results` vector on the
// `run_scoped` caller's stack. Each submitted task receives a pointer
// to a *distinct* slot (the `iter_mut().zip(tasks)` pairing), so no two
// threads ever alias a slot, and the caller does not read any slot
// until `latch.wait()` has observed every task complete — the slot
// therefore outlives the send and is accessed exclusively. `T: Send`
// is required because the value written through the pointer migrates
// from a worker thread back to the caller.
unsafe impl<T: Send> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the
    /// whole wrapper — edition-2021 disjoint capture would otherwise
    /// capture the raw pointer and lose the `Send` impl.
    fn get(&self) -> *mut T {
        self.0
    }
}

struct PoolInner {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.work_notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl PoolInner {
    fn work_notify_all(&self) {
        self.shared.work_cv.notify_all();
    }
}

/// A cloneable handle to a persistent worker pool.
///
/// Workers are spawned once at construction and park on a condition
/// variable between calls; dropping the *last* handle shuts the
/// workers down and joins them. The process-wide [`TaskPool::global`]
/// pool is never dropped.
#[derive(Clone)]
pub struct TaskPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for TaskPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskPool")
            .field("workers", &self.workers())
            .finish()
    }
}

impl TaskPool {
    /// Spawn a pool with `workers` persistent threads. `workers == 0`
    /// is allowed: every task then runs inline on the submitting
    /// thread (useful for tests and strictly serial deployments).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            queue_highwater: AtomicU64::new(0),
            worker_wakeups: AtomicU64::new(0),
            worker_tasks: AtomicU64::new(0),
            inline_drained: AtomicU64::new(0),
            park_ns: AtomicU64::new(0),
            scoped_calls: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                smm_sync::sync::thread::Builder::new()
                    .name(format!("smm-worker-{i}"))
                    .spawn(move || {
                        // Stable flight-recorder tid: traces label pool
                        // workers 1..=N, matching the thread names.
                        crate::flight::set_thread_tid(1 + i as u32);
                        worker_loop(&shared)
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        TaskPool {
            inner: Arc::new(PoolInner {
                shared,
                workers: handles,
            }),
        }
    }

    /// The process-wide shared pool, sized to the machine's available
    /// parallelism. Spawned on first use, parked when idle, never
    /// dropped.
    pub fn global() -> &'static TaskPool {
        static GLOBAL: OnceLock<TaskPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism().map_or(4, |p| p.get());
            TaskPool::new(n)
        })
    }

    /// Number of persistent worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers.len()
    }

    /// Cumulative activity counters of this pool.
    pub fn stats(&self) -> PoolStats {
        let s = &self.inner.shared;
        PoolStats {
            workers: self.workers(),
            queue_highwater: s.queue_highwater.load(Ordering::Relaxed),
            worker_wakeups: s.worker_wakeups.load(Ordering::Relaxed),
            worker_tasks: s.worker_tasks.load(Ordering::Relaxed),
            inline_drained: s.inline_drained.load(Ordering::Relaxed),
            park_ns: s.park_ns.load(Ordering::Relaxed),
            scoped_calls: s.scoped_calls.load(Ordering::Relaxed),
        }
    }

    /// Inject the given tasks, run them to completion (workers plus
    /// the calling thread, which helps drain the queue), and return
    /// their results in task order.
    ///
    /// Tasks may borrow from the caller's stack: this call does not
    /// return until every task has finished, which is what makes the
    /// internal lifetime erasure sound. If a task panics, the first
    /// payload is re-thrown here after the scope has fully drained.
    pub fn run_scoped<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        // Fast path: a single task (or a deliberately serial pool)
        // runs inline — no queue traffic, no wakeup.
        if n == 1 || self.workers() == 0 {
            return tasks.into_iter().map(|t| t()).collect();
        }

        let mut results: Vec<Option<T>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let latch = Latch::new(n);

        {
            let shared = &self.inner.shared;
            let mut q = shared.queue.lock().unwrap();
            for (slot, task) in results.iter_mut().zip(tasks) {
                let slot = SendPtr(slot as *mut Option<T>);
                let latch_ref: &Latch = &latch;
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(task));
                    match out {
                        Ok(v) => {
                            // SAFETY: see `SendPtr` — exclusive slot,
                            // caller waits on the latch before reading.
                            unsafe { *slot.get() = Some(v) };
                            latch_ref.complete(None);
                        }
                        Err(payload) => latch_ref.complete(Some(payload)),
                    }
                });
                // SAFETY: lifetime erasure of the scoped submission.
                // The job borrows `latch` and one result slot, both on
                // this stack frame, and the transmute forges `'static`
                // from that scope lifetime. This is sound because the
                // frame cannot be abandoned while a job is live:
                // `latch.wait()` below blocks until every job has
                // called `Latch::complete` (each job's last touch of
                // the borrows), including the panic path, where
                // `catch_unwind` converts the unwind into a normal
                // `complete(Some(payload))` and the payload is
                // re-thrown only from `wait()` after the whole scope
                // has drained. Nothing between the queue push and
                // `wait()` can panic or return early, and workers never
                // hold a popped job without running it to completion.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
                q.jobs.push_back(job);
            }
            shared
                .queue_highwater
                .fetch_max(q.jobs.len() as u64, Ordering::Relaxed);
            shared.scoped_calls.fetch_add(1, Ordering::Relaxed);
            drop(q);
            shared.work_cv.notify_all();
        }

        // Help drain the queue while waiting: keeps nested scopes
        // deadlock-free and lets the caller contribute a core.
        while let Some(job) = self.inner.shared.try_pop() {
            self.inner
                .shared
                .inline_drained
                .fetch_add(1, Ordering::Relaxed);
            job();
        }
        latch.wait();
        results
            .into_iter()
            .map(|r| r.expect("pool task completed without writing its result"))
            .collect()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(j) = q.jobs.pop_front() {
                    shared.worker_tasks.fetch_add(1, Ordering::Relaxed);
                    break Some(j);
                }
                if q.shutdown {
                    break None;
                }
                // lint:allow(instant-now) -- park-time accounting: read only as a worker goes to sleep, never on the job path
                let parked = Instant::now();
                q = shared.work_cv.wait(q).unwrap();
                shared
                    .park_ns
                    .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
                shared.worker_wakeups.fetch_add(1, Ordering::Relaxed);
            }
        };
        match job {
            Some(j) => j(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_tasks_and_orders_results() {
        let pool = TaskPool::new(4);
        let inputs: Vec<usize> = (0..64).collect();
        let tasks: Vec<_> = inputs.iter().map(|&i| move || i * i).collect();
        let out = pool.run_scoped(tasks);
        assert_eq!(out, inputs.iter().map(|&i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_can_borrow_caller_stack() {
        let pool = TaskPool::new(2);
        let data: Vec<u64> = (0..1000).collect();
        let chunks: Vec<&[u64]> = data.chunks(100).collect();
        let tasks: Vec<_> = chunks
            .iter()
            .map(|&c| move || c.iter().sum::<u64>())
            .collect();
        let partials = pool.run_scoped(tasks);
        assert_eq!(partials.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn pool_is_reusable_and_workers_persist() {
        let pool = TaskPool::new(3);
        assert_eq!(pool.workers(), 3);
        for round in 0..50 {
            let tasks: Vec<_> = (0..8).map(|i| move || i + round).collect();
            let out = pool.run_scoped(tasks);
            assert_eq!(out.len(), 8);
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = TaskPool::new(0);
        let out = pool.run_scoped(vec![|| 1, || 2, || 3]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_scope_is_a_noop() {
        let pool = TaskPool::new(1);
        let out: Vec<i32> = pool.run_scoped(Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = TaskPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_scoped(vec![
                Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
                Box::new(|| panic!("task exploded")),
            ]);
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task exploded");
        // The pool must stay usable afterwards.
        assert_eq!(pool.run_scoped(vec![|| 7, || 8]), vec![7, 8]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = TaskPool::new(1); // worst case: one worker, nested fan-out
        let outer: Vec<_> = (0..4)
            .map(|i| {
                let pool = pool.clone();
                move || {
                    let inner: Vec<_> = (0..4).map(|j| move || i * 10 + j).collect();
                    pool.run_scoped(inner).into_iter().sum::<usize>()
                }
            })
            .collect();
        let sums = TaskPool::new(1).run_scoped(outer);
        assert_eq!(sums.len(), 4);
    }

    #[test]
    fn shared_from_many_threads() {
        let pool = TaskPool::new(4);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..20 {
                        let tasks: Vec<_> = (0..4)
                            .map(|_| || counter.fetch_add(1, Ordering::Relaxed))
                            .collect();
                        pool.run_scoped(tasks);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 20 * 4);
    }

    #[test]
    fn stats_track_activity() {
        let pool = TaskPool::new(2);
        assert_eq!(
            pool.stats(),
            PoolStats {
                workers: 2,
                ..Default::default()
            }
        );
        for round in 0..20 {
            let tasks: Vec<_> = (0..6).map(|i| move || i + round).collect();
            pool.run_scoped(tasks);
        }
        let s = pool.stats();
        assert_eq!(s.workers, 2);
        // Every job was run by a worker or drained inline — none lost.
        assert_eq!(s.worker_tasks + s.inline_drained, 20 * 6);
        assert_eq!(s.scoped_calls, 20);
        assert!(s.queue_highwater >= 1 && s.queue_highwater <= 6);
        // Monotonicity: another round only grows the counters.
        pool.run_scoped((0..6).map(|i| move || i).collect::<Vec<_>>());
        let s2 = pool.stats();
        assert_eq!(s2.worker_tasks + s2.inline_drained, 21 * 6);
        assert!(s2.worker_wakeups >= s.worker_wakeups);
        assert!(s2.park_ns >= s.park_ns);
    }

    #[test]
    fn inline_pool_counts_only_inline() {
        // Zero workers: run_scoped's fast path runs tasks inline
        // without touching the queue, so only `workers` is observable.
        let pool = TaskPool::new(0);
        pool.run_scoped(vec![|| 1, || 2, || 3]);
        let s = pool.stats();
        assert_eq!(s.workers, 0);
        assert_eq!(s.worker_tasks, 0);
        assert_eq!(s.queue_highwater, 0);
        assert_eq!(s.scoped_calls, 0);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = TaskPool::new(2);
        pool.run_scoped(vec![|| (), || ()]);
        drop(pool); // must not hang
    }
}
