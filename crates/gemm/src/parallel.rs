//! Native multi-threaded GEMM execution.
//!
//! Two decompositions, matching §III-D of the paper:
//!
//! * [`gemm_parallel_2d`] — the OpenBLAS/Eigen style: the task matrix
//!   `C` is cut into an `m_ways × n_ways` grid and each thread runs the
//!   full Goto engine on its block.
//! * [`gemm_parallel_grid`] — the BLIS style: a multi-dimensional
//!   [`ThreadGrid`] chosen at run time (small dimensions are not
//!   parallelized); natively the `(jc·jr)` and `(ic·ir)` ways collapse
//!   onto the N/M splits while the simulator models the full loop-level
//!   behaviour.
//!
//! Threads accumulate into private blocks that are merged after the
//! join, so no `unsafe` aliasing is needed; the merge touches each `C`
//! element exactly once because the grid blocks are disjoint. The only
//! `unsafe` in the parallel path lives in [`crate::pool`], whose
//! scoped-submission SAFETY argument (tasks borrow the caller's stack;
//! `run_scoped` cannot return until every task has completed) is what
//! lets the closures built here borrow operand views and plan tables
//! without `'static` bounds or reference counting.
//!
//! Both entry points execute on a persistent [`TaskPool`] — the
//! spawn-per-call mechanism the paper's §III-D indicts is gone. The
//! `_in` variants accept an explicit pool handle; the plain variants
//! use the process-wide [`TaskPool::global`] pool.

use smm_kernels::Scalar;
use smm_model::parallel::ThreadGrid;

use crate::engine::GotoEngine;
use crate::matrix::{Mat, MatMut, MatRef};
use crate::naive::check_dims;
use crate::pool::TaskPool;

/// Split `len` into `ways` near-equal contiguous chunks (first chunks
/// get the remainder). Empty chunks are allowed when `ways > len`.
pub fn split_ranges(len: usize, ways: usize) -> Vec<(usize, usize)> {
    assert!(ways >= 1);
    let base = len / ways;
    let extra = len % ways;
    let mut out = Vec::with_capacity(ways);
    let mut start = 0;
    for t in 0..ways {
        let size = base + usize::from(t < extra);
        out.push((start, size));
        start += size;
    }
    out
}

/// `C = alpha·A·B + beta·C` over an `m_ways × n_ways` grid, executed
/// on the process-wide persistent pool.
#[allow(clippy::too_many_arguments)]
pub fn gemm_parallel_2d<S: Scalar>(
    engine: &GotoEngine,
    m_ways: usize,
    n_ways: usize,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
) {
    gemm_parallel_2d_in(
        TaskPool::global(),
        engine,
        m_ways,
        n_ways,
        alpha,
        a,
        b,
        beta,
        c,
    );
}

/// [`gemm_parallel_2d`] on an explicit pool handle.
#[allow(clippy::too_many_arguments)]
pub fn gemm_parallel_2d_in<S: Scalar>(
    pool: &TaskPool,
    engine: &GotoEngine,
    m_ways: usize,
    n_ways: usize,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    mut c: MatMut<'_, S>,
) {
    let (m, k, n) = check_dims(&a, &b, &c.rb());
    if m_ways * n_ways <= 1 || m == 0 || n == 0 {
        engine.gemm(alpha, a, b, beta, c);
        return;
    }
    c.scale(beta);
    if k == 0 {
        return;
    }
    let rows = split_ranges(m, m_ways);
    let cols = split_ranges(n, n_ways);

    // Each cell computes its block into a private matrix on the pool.
    let mut tasks = Vec::new();
    for &(i0, mt) in &rows {
        for &(j0, nt) in &cols {
            if mt == 0 || nt == 0 {
                continue;
            }
            let a_blk = a.block(i0, 0, mt, k);
            let b_blk = b.block(0, j0, k, nt);
            let engine = engine.clone();
            tasks.push(move || {
                let mut local = Mat::<S>::zeros(mt, nt);
                engine.gemm(alpha, a_blk, b_blk, S::ZERO, local.as_mut());
                (i0, j0, local)
            });
        }
    }
    for (i0, j0, local) in pool.run_scoped(tasks) {
        for j in 0..local.cols() {
            for i in 0..local.rows() {
                let v = c.at(i0 + i, j0 + j) + local[(i, j)];
                c.set(i0 + i, j0 + j, v);
            }
        }
    }
}

/// BLIS-style execution of a multi-dimensional [`ThreadGrid`] on the
/// process-wide persistent pool.
pub fn gemm_parallel_grid<S: Scalar>(
    engine: &GotoEngine,
    grid: ThreadGrid,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
) {
    gemm_parallel_2d(engine, grid.m_ways(), grid.n_ways(), alpha, a, b, beta, c);
}

/// [`gemm_parallel_grid`] on an explicit pool handle.
#[allow(clippy::too_many_arguments)]
pub fn gemm_parallel_grid_in<S: Scalar>(
    pool: &TaskPool,
    engine: &GotoEngine,
    grid: ThreadGrid,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
) {
    gemm_parallel_2d_in(
        pool,
        engine,
        grid.m_ways(),
        grid.n_ways(),
        alpha,
        a,
        b,
        beta,
        c,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{blis_engine, openblas_engine};
    use crate::naive::gemm_naive;

    fn check_2d(m_ways: usize, n_ways: usize, m: usize, n: usize, k: usize) {
        let e = openblas_engine();
        let a = Mat::<f32>::random(m, k, 7);
        let b = Mat::<f32>::random(k, n, 8);
        let mut c = Mat::<f32>::random(m, n, 9);
        let mut c_ref = c.clone();
        gemm_parallel_2d(
            &e,
            m_ways,
            n_ways,
            1.5,
            a.as_ref(),
            b.as_ref(),
            0.5,
            c.as_mut(),
        );
        gemm_naive(1.5, a.as_ref(), b.as_ref(), 0.5, c_ref.as_mut());
        let d = c.max_abs_diff(&c_ref);
        assert!(d < 1e-3, "{m_ways}x{n_ways} grid on {m}x{n}x{k}: diff {d}");
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 64, 100] {
            for ways in [1usize, 2, 3, 8] {
                let r = split_ranges(len, ways);
                assert_eq!(r.len(), ways);
                let total: usize = r.iter().map(|&(_, s)| s).sum();
                assert_eq!(total, len);
                let mut pos = 0;
                for &(start, size) in &r {
                    assert_eq!(start, pos);
                    pos += size;
                }
            }
        }
    }

    #[test]
    fn split_is_near_balanced() {
        let r = split_ranges(10, 4);
        let sizes: Vec<usize> = r.iter().map(|&(_, s)| s).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn parallel_matches_naive_square() {
        check_2d(2, 2, 40, 40, 40);
        check_2d(4, 1, 64, 16, 32);
        check_2d(1, 4, 16, 64, 32);
    }

    #[test]
    fn parallel_handles_irregular_and_overdecomposed() {
        check_2d(3, 2, 17, 13, 9);
        // More ways than rows: some threads get empty chunks.
        check_2d(8, 1, 5, 20, 10);
    }

    #[test]
    fn single_way_falls_back_to_engine() {
        check_2d(1, 1, 30, 30, 30);
    }

    #[test]
    fn grid_wrapper_uses_m_and_n_ways() {
        let e = blis_engine();
        let grid = ThreadGrid {
            jc: 2,
            ic: 2,
            jr: 1,
            ir: 1,
        };
        let a = Mat::<f32>::random(24, 12, 1);
        let b = Mat::<f32>::random(12, 36, 2);
        let mut c = Mat::<f32>::zeros(24, 36);
        let mut c_ref = c.clone();
        gemm_parallel_grid(&e, grid, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn k_zero_scales_only() {
        let e = openblas_engine();
        let a = Mat::<f32>::zeros(8, 0);
        let b = Mat::<f32>::zeros(0, 8);
        let mut c = Mat::<f32>::from_fn(8, 8, |_, _| 4.0);
        gemm_parallel_2d(&e, 2, 2, 1.0, a.as_ref(), b.as_ref(), 0.25, c.as_mut());
        assert_eq!(c[(7, 7)], 1.0);
    }
}
