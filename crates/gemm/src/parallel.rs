//! Native multi-threaded GEMM execution.
//!
//! Two decompositions, matching §III-D of the paper:
//!
//! * [`gemm_parallel_2d`] — the OpenBLAS/Eigen style: the task matrix
//!   `C` is cut into an `m_ways × n_ways` grid and each thread runs the
//!   full Goto engine on its block.
//! * [`gemm_parallel_grid`] — the BLIS style: a multi-dimensional
//!   [`ThreadGrid`] chosen at run time (small dimensions are not
//!   parallelized); natively the `(jc·jr)` and `(ic·ir)` ways collapse
//!   onto the N/M splits while the simulator models the full loop-level
//!   behaviour.
//!
//! Each worker writes its `C` block **in place** through a disjoint
//! tile handed out by [`MatMut::split_grid`]: no private block is
//! allocated and no post-join merge pass runs, so `C` is touched once
//! (§III-D of the paper charges exactly this second sweep — plus the
//! barrier it serializes behind — to parallelization overhead). The
//! aliasing argument lives in `split_grid`'s single audited `unsafe`;
//! the other `unsafe` in the parallel path is [`crate::pool`]'s
//! scoped-submission argument (tasks borrow the caller's stack;
//! `run_scoped` cannot return until every task has completed), which is
//! what lets the closures built here borrow operand views, the engine
//! and the tiles without `'static` bounds or reference counting.
//!
//! Both entry points execute on a persistent [`TaskPool`] — the
//! spawn-per-call mechanism the paper's §III-D indicts is gone. The
//! `_in` variants accept an explicit pool handle; the plain variants
//! use the process-wide [`TaskPool::global`] pool.

use smm_kernels::Scalar;
use smm_model::parallel::ThreadGrid;

use crate::engine::GotoEngine;
use crate::matrix::{MatMut, MatRef};
use crate::naive::check_dims_of;
use crate::pool::TaskPool;

/// Split `len` into `ways` near-equal contiguous chunks (first chunks
/// get the remainder). Empty chunks are allowed when `ways > len`.
pub fn split_ranges(len: usize, ways: usize) -> Vec<(usize, usize)> {
    assert!(ways >= 1);
    let base = len / ways;
    let extra = len % ways;
    let mut out = Vec::with_capacity(ways);
    let mut start = 0;
    for t in 0..ways {
        let size = base + usize::from(t < extra);
        out.push((start, size));
        start += size;
    }
    out
}

/// [`split_ranges`] with empty chunks dropped. Task-spawning consumers
/// use this so over-decomposition (`ways > len`) does not push no-op
/// tasks onto the pool — each of those costs a queue slot and a worker
/// wakeup (visible in `PoolStats::worker_wakeups`) for zero work.
pub fn split_ranges_nonempty(len: usize, ways: usize) -> Vec<(usize, usize)> {
    let mut out = split_ranges(len, ways);
    out.retain(|&(_, size)| size > 0);
    out
}

/// `C = alpha·A·B + beta·C` over an `m_ways × n_ways` grid, executed
/// on the process-wide persistent pool.
#[allow(clippy::too_many_arguments)]
pub fn gemm_parallel_2d<S: Scalar>(
    engine: &GotoEngine,
    m_ways: usize,
    n_ways: usize,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
) {
    gemm_parallel_2d_in(
        TaskPool::global(),
        engine,
        m_ways,
        n_ways,
        alpha,
        a,
        b,
        beta,
        c,
    );
}

/// [`gemm_parallel_2d`] on an explicit pool handle.
#[allow(clippy::too_many_arguments)]
pub fn gemm_parallel_2d_in<S: Scalar>(
    pool: &TaskPool,
    engine: &GotoEngine,
    m_ways: usize,
    n_ways: usize,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    mut c: MatMut<'_, S>,
) {
    let (m, k, n) = check_dims_of(&a, &b, c.rows(), c.cols());
    if m_ways * n_ways <= 1 || m == 0 || n == 0 {
        engine.gemm(alpha, a, b, beta, c);
        return;
    }
    // Apply beta once up front, then hand each worker a disjoint tile
    // of C to update in place with beta = 1 (a no-op rescale): no
    // private block, no merge pass, C is written exactly once past
    // this point.
    c.scale(beta);
    if k == 0 {
        return;
    }
    let rows = split_ranges_nonempty(m, m_ways);
    let cols = split_ranges_nonempty(n, n_ways);
    let tiles = c.split_grid(&rows, &cols);

    let mut tasks = Vec::with_capacity(tiles.len());
    for (i0, j0, tile) in tiles {
        let a_blk = a.block(i0, 0, tile.rows(), k);
        let b_blk = b.block(0, j0, k, tile.cols());
        tasks.push(move || engine.gemm(alpha, a_blk, b_blk, S::ONE, tile));
    }
    pool.run_scoped(tasks);
}

/// BLIS-style execution of a multi-dimensional [`ThreadGrid`] on the
/// process-wide persistent pool.
pub fn gemm_parallel_grid<S: Scalar>(
    engine: &GotoEngine,
    grid: ThreadGrid,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
) {
    gemm_parallel_2d(engine, grid.m_ways(), grid.n_ways(), alpha, a, b, beta, c);
}

/// [`gemm_parallel_grid`] on an explicit pool handle.
#[allow(clippy::too_many_arguments)]
pub fn gemm_parallel_grid_in<S: Scalar>(
    pool: &TaskPool,
    engine: &GotoEngine,
    grid: ThreadGrid,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
) {
    gemm_parallel_2d_in(
        pool,
        engine,
        grid.m_ways(),
        grid.n_ways(),
        alpha,
        a,
        b,
        beta,
        c,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{blis_engine, openblas_engine};
    use crate::matrix::Mat;
    use crate::naive::gemm_naive;

    /// The pre-split_grid implementation, kept as a parity oracle:
    /// each cell computes into a private block and a merge pass adds
    /// the blocks into C after the fact.
    #[allow(clippy::too_many_arguments)]
    fn gemm_merge_oracle<S: Scalar>(
        engine: &GotoEngine,
        m_ways: usize,
        n_ways: usize,
        alpha: S,
        a: MatRef<'_, S>,
        b: MatRef<'_, S>,
        beta: S,
        mut c: MatMut<'_, S>,
    ) {
        let (m, k, n) = check_dims_of(&a, &b, c.rows(), c.cols());
        if m_ways * n_ways <= 1 || m == 0 || n == 0 {
            engine.gemm(alpha, a, b, beta, c);
            return;
        }
        c.scale(beta);
        if k == 0 {
            return;
        }
        for &(i0, mt) in &split_ranges(m, m_ways) {
            for &(j0, nt) in &split_ranges(n, n_ways) {
                if mt == 0 || nt == 0 {
                    continue;
                }
                let mut local = Mat::<S>::zeros(mt, nt);
                engine.gemm(
                    alpha,
                    a.block(i0, 0, mt, k),
                    b.block(0, j0, k, nt),
                    S::ZERO,
                    local.as_mut(),
                );
                for j in 0..nt {
                    for i in 0..mt {
                        let v = c.at(i0 + i, j0 + j) + local[(i, j)];
                        c.set(i0 + i, j0 + j, v);
                    }
                }
            }
        }
    }

    fn check_2d(m_ways: usize, n_ways: usize, m: usize, n: usize, k: usize) {
        let e = openblas_engine();
        let a = Mat::<f32>::random(m, k, 7);
        let b = Mat::<f32>::random(k, n, 8);
        let mut c = Mat::<f32>::random(m, n, 9);
        let mut c_ref = c.clone();
        gemm_parallel_2d(
            &e,
            m_ways,
            n_ways,
            1.5,
            a.as_ref(),
            b.as_ref(),
            0.5,
            c.as_mut(),
        );
        gemm_naive(1.5, a.as_ref(), b.as_ref(), 0.5, c_ref.as_mut());
        let d = c.max_abs_diff(&c_ref);
        assert!(d < 1e-3, "{m_ways}x{n_ways} grid on {m}x{n}x{k}: diff {d}");
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 64, 100] {
            for ways in [1usize, 2, 3, 8] {
                let r = split_ranges(len, ways);
                assert_eq!(r.len(), ways);
                let total: usize = r.iter().map(|&(_, s)| s).sum();
                assert_eq!(total, len);
                let mut pos = 0;
                for &(start, size) in &r {
                    assert_eq!(start, pos);
                    pos += size;
                }
            }
        }
    }

    #[test]
    fn split_is_near_balanced() {
        let r = split_ranges(10, 4);
        let sizes: Vec<usize> = r.iter().map(|&(_, s)| s).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn parallel_matches_naive_square() {
        check_2d(2, 2, 40, 40, 40);
        check_2d(4, 1, 64, 16, 32);
        check_2d(1, 4, 16, 64, 32);
    }

    #[test]
    fn parallel_handles_irregular_and_overdecomposed() {
        check_2d(3, 2, 17, 13, 9);
        // More ways than rows: some threads get empty chunks.
        check_2d(8, 1, 5, 20, 10);
    }

    #[test]
    fn single_way_falls_back_to_engine() {
        check_2d(1, 1, 30, 30, 30);
    }

    #[test]
    fn grid_wrapper_uses_m_and_n_ways() {
        let e = blis_engine();
        let grid = ThreadGrid {
            jc: 2,
            ic: 2,
            jr: 1,
            ir: 1,
        };
        let a = Mat::<f32>::random(24, 12, 1);
        let b = Mat::<f32>::random(12, 36, 2);
        let mut c = Mat::<f32>::zeros(24, 36);
        let mut c_ref = c.clone();
        gemm_parallel_grid(&e, grid, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn k_zero_scales_only() {
        let e = openblas_engine();
        let a = Mat::<f32>::zeros(8, 0);
        let b = Mat::<f32>::zeros(0, 8);
        let mut c = Mat::<f32>::from_fn(8, 8, |_, _| 4.0);
        gemm_parallel_2d(&e, 2, 2, 1.0, a.as_ref(), b.as_ref(), 0.25, c.as_mut());
        assert_eq!(c[(7, 7)], 1.0);
    }

    #[test]
    fn split_ranges_nonempty_drops_empty_chunks() {
        // ways > len: 8 chunks over 5 elements leaves 3 empties.
        let r = split_ranges_nonempty(5, 8);
        assert_eq!(r, vec![(0, 1), (1, 1), (2, 1), (3, 1), (4, 1)]);
        assert_eq!(split_ranges_nonempty(0, 4), vec![]);
        assert_eq!(split_ranges_nonempty(10, 3), split_ranges(10, 3));
    }

    /// In-place disjoint writes must be *bit-for-bit* identical to the
    /// old private-block + merge path. With one k block the old path
    /// computed `c + (0 + alpha·acc)` and the new computes
    /// `c + alpha·acc` — identical, since IEEE `0.0 + x` preserves the
    /// bits of every x the accumulator can produce.
    #[test]
    fn in_place_is_bit_identical_to_merge_path() {
        let e = openblas_engine();
        for &(m_ways, n_ways, m, n, k, seed) in &[
            (2usize, 2usize, 40usize, 40usize, 24usize, 7u64),
            (3, 2, 17, 13, 9, 8),
            (8, 1, 5, 20, 10, 9),
            (1, 4, 1, 33, 16, 10),  // m = 1
            (4, 2, 29, 1, 12, 11),  // n = 1
            (2, 2, 16, 16, 0, 12),  // k = 0: beta-scale only
            (4, 4, 64, 64, 32, 13), // all cells full tiles
        ] {
            let a = Mat::<f32>::random(m, k, seed);
            let b = Mat::<f32>::random(k, n, seed + 100);
            let c0 = Mat::<f32>::random(m, n, seed + 200);
            let mut c_new = c0.clone();
            let mut c_old = c0.clone();
            gemm_parallel_2d(
                &e,
                m_ways,
                n_ways,
                1.5,
                a.as_ref(),
                b.as_ref(),
                0.25,
                c_new.as_mut(),
            );
            gemm_merge_oracle(
                &e,
                m_ways,
                n_ways,
                1.5,
                a.as_ref(),
                b.as_ref(),
                0.25,
                c_old.as_mut(),
            );
            for j in 0..n {
                for i in 0..m {
                    assert_eq!(
                        c_new[(i, j)].to_bits(),
                        c_old[(i, j)].to_bits(),
                        "{m_ways}x{n_ways} on {m}x{n}x{k} at ({i},{j})"
                    );
                }
            }
        }
    }

    /// Same parity through a gapped-`ldc` view (C embedded in a larger
    /// buffer); the gap rows must come through untouched.
    #[test]
    fn in_place_parity_with_gapped_ldc() {
        let e = blis_engine();
        let (m, n, k, ldc) = (13usize, 11usize, 8usize, 19usize);
        let a = Mat::<f32>::random(m, k, 21);
        let b = Mat::<f32>::random(k, n, 22);
        let backing0: Vec<f32> = (0..ldc * n).map(|i| (i % 23) as f32 - 11.0).collect();
        let mut back_new = backing0.clone();
        let mut back_old = backing0.clone();
        gemm_parallel_2d(
            &e,
            2,
            3,
            1.5,
            a.as_ref(),
            b.as_ref(),
            -0.5,
            MatMut::from_slice(&mut back_new, m, n, ldc),
        );
        gemm_merge_oracle(
            &e,
            2,
            3,
            1.5,
            a.as_ref(),
            b.as_ref(),
            -0.5,
            MatMut::from_slice(&mut back_old, m, n, ldc),
        );
        for (i, (&x, &y)) in back_new.iter().zip(back_old.iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "flat index {i}");
        }
        for j in 0..n {
            for g in m..ldc {
                assert_eq!(
                    back_new[j * ldc + g],
                    backing0[j * ldc + g],
                    "gap row {g} col {j} must be untouched"
                );
            }
        }
    }
}
