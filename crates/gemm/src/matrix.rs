//! Matrix storage: column-major views and BLASFEO's panel-major format.

use std::marker::PhantomData;

use smm_kernels::Scalar;

/// An owned column-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat<S: Scalar> {
    rows: usize,
    cols: usize,
    ld: usize,
    data: Vec<S>,
}

impl<S: Scalar> Mat<S> {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            ld: rows.max(1),
            data: vec![S::ZERO; rows.max(1) * cols],
        }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Deterministic pseudo-random test matrix with small values.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            S::from_f64(((state >> 33) as i64 % 19 - 9) as f64 * 0.125)
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (stride between columns).
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Immutable view.
    pub fn as_ref(&self) -> MatRef<'_, S> {
        MatRef {
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            data: &self.data,
        }
    }

    /// Mutable view.
    pub fn as_mut(&mut self) -> MatMut<'_, S> {
        MatMut::from_slice(&mut self.data, self.rows, self.cols, self.ld)
    }

    /// Raw storage (column-major, `ld * cols`).
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Largest absolute elementwise difference against another matrix.
    pub fn max_abs_diff(&self, other: &Mat<S>) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let mut worst = 0.0f64;
        for j in 0..self.cols {
            for i in 0..self.rows {
                let d = (self[(i, j)].to_f64() - other[(i, j)].to_f64()).abs();
                worst = worst.max(d);
            }
        }
        worst
    }
}

impl<S: Scalar> std::ops::Index<(usize, usize)> for Mat<S> {
    type Output = S;

    fn index(&self, (i, j): (usize, usize)) -> &S {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[j * self.ld + i]
    }
}

impl<S: Scalar> std::ops::IndexMut<(usize, usize)> for Mat<S> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[j * self.ld + i]
    }
}

/// Borrowed column-major view.
#[derive(Debug, Clone, Copy)]
pub struct MatRef<'a, S: Scalar> {
    rows: usize,
    cols: usize,
    ld: usize,
    data: &'a [S],
}

impl<'a, S: Scalar> MatRef<'a, S> {
    /// View over a raw column-major slice.
    pub fn from_slice(data: &'a [S], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1), "leading dimension too small");
        assert!(
            data.len() >= ld * cols.saturating_sub(1) + rows,
            "slice too short"
        );
        MatRef {
            rows,
            cols,
            ld,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension.
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element access.
    pub fn at(&self, i: usize, j: usize) -> S {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i]
    }

    /// Sub-view of `nrows × ncols` starting at `(i0, j0)`.
    pub fn block(&self, i0: usize, j0: usize, nrows: usize, ncols: usize) -> MatRef<'a, S> {
        assert!(
            i0 + nrows <= self.rows && j0 + ncols <= self.cols,
            "block out of bounds"
        );
        MatRef {
            rows: nrows,
            cols: ncols,
            ld: self.ld,
            data: &self.data[j0 * self.ld + i0..],
        }
    }

    /// Underlying slice starting at the view origin.
    pub fn data(&self) -> &'a [S] {
        self.data
    }
}

/// Borrowed mutable column-major view.
///
/// Internally raw-pointer based so that [`MatMut::split_grid`] can hand
/// out *disjoint* tiles of one parent view to different pool workers.
/// Row-split tiles of a column-major matrix interleave in memory, so
/// sibling tiles cannot be represented as non-overlapping `&mut [S]`
/// slices: each tile's minimal covering slice would claim exclusive
/// access to bytes that belong to its siblings, which is undefined
/// behaviour under the aliasing model even if the overlapping elements
/// are never touched through both.
///
/// # Access invariant
///
/// A `MatMut` holds *exclusive* access, for the lifetime `'a`, to
/// exactly the elements at `ptr + j*ld + i` for `i < rows`,
/// `j < cols`, plus the right to expose the first `span` contiguous
/// elements from `ptr` as one `&mut [S]` (the whole backing tail for
/// views built from a slice; clipped to what is provably unshared for
/// split tiles). Every safe accessor checks its indices against
/// `rows`/`cols` (or `span`), so safe code cannot reach memory outside
/// the view's claim.
#[derive(Debug)]
pub struct MatMut<'a, S: Scalar> {
    rows: usize,
    cols: usize,
    ld: usize,
    /// Contiguous elements from `ptr` this view may expose as a slice.
    span: usize,
    ptr: *mut S,
    _marker: PhantomData<&'a mut [S]>,
}

// SAFETY: a MatMut is an exclusive borrow of its element set (see the
// access invariant above) — semantically a `&'a mut [S]` restricted to
// a rectangle, and `&mut [S]` is Send/Sync whenever `S` is. `Scalar`
// already requires `Send + Sync`, and every accessor takes `&self`/
// `&mut self`, so the usual borrow rules serialize all access through
// one view.
unsafe impl<S: Scalar> Send for MatMut<'_, S> {}
// SAFETY: as above — `&MatMut` only permits reads of exclusively owned
// elements, matching `&&mut [S]`.
unsafe impl<S: Scalar> Sync for MatMut<'_, S> {}

impl<'a, S: Scalar> MatMut<'a, S> {
    /// View over a raw column-major slice.
    pub fn from_slice(data: &'a mut [S], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1), "leading dimension too small");
        assert!(
            data.len() >= ld * cols.saturating_sub(1) + rows,
            "slice too short"
        );
        MatMut {
            rows,
            cols,
            ld,
            span: data.len(),
            ptr: data.as_mut_ptr(),
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension.
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Smallest contiguous element count covering the rectangle.
    fn min_span(&self) -> usize {
        if self.rows == 0 || self.cols == 0 {
            0
        } else {
            self.ld * (self.cols - 1) + self.rows
        }
    }

    /// Whether the view can expose its rectangle as one `&[S]`/
    /// `&mut [S]` ([`MatMut::rb`] / [`MatMut::data_mut`]). True for
    /// every view except row-split [`MatMut::split_grid`] tiles, whose
    /// covering slice would overlap sibling tiles.
    pub fn is_contiguous_view(&self) -> bool {
        self.span >= self.min_span()
    }

    /// Element access.
    pub fn at(&self, i: usize, j: usize) -> S {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        // SAFETY: the assert keeps (i, j) inside the view's rectangle,
        // which the access invariant makes dereferenceable and ours.
        unsafe { *self.ptr.add(j * self.ld + i) }
    }

    /// Set one element.
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        // SAFETY: the assert keeps (i, j) inside the view's rectangle;
        // `&mut self` plus the access invariant give exclusive access.
        unsafe { *self.ptr.add(j * self.ld + i) = v }
    }

    /// Reborrow as immutable. Panics for row-split tiles (see
    /// [`MatMut::is_contiguous_view`]); use [`MatMut::at`] there.
    pub fn rb(&self) -> MatRef<'_, S> {
        assert!(
            self.is_contiguous_view(),
            "split tile cannot expose a contiguous view"
        );
        // SAFETY: `span` contiguous elements from `ptr` are exclusively
        // this view's (access invariant), the assert proved they cover
        // the rectangle, and the returned borrow is tied to `&self`, so
        // no write can occur through this view while the MatRef lives.
        let data = unsafe { std::slice::from_raw_parts(self.ptr, self.span) };
        MatRef {
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            data,
        }
    }

    /// Reborrow mutably (shorter lifetime).
    pub fn rb_mut(&mut self) -> MatMut<'_, S> {
        MatMut {
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            span: self.span,
            ptr: self.ptr,
            _marker: PhantomData,
        }
    }

    /// Mutable sub-view.
    pub fn block_mut(&mut self, i0: usize, j0: usize, nrows: usize, ncols: usize) -> MatMut<'_, S> {
        assert!(
            i0 + nrows <= self.rows && j0 + ncols <= self.cols,
            "block out of bounds"
        );
        let off = j0 * self.ld + i0;
        MatMut {
            rows: nrows,
            cols: ncols,
            ld: self.ld,
            span: self.span.saturating_sub(off),
            // SAFETY: `off` is the flat index of element (i0, j0) when
            // the block is non-empty, hence inside the parent's
            // allocation; for an empty block the assert still bounds
            // `off` by `ld * cols`, which from_slice/split construction
            // keeps within one-past-the-end of the backing buffer.
            ptr: unsafe { self.ptr.add(off.min(self.span)) },
            _marker: PhantomData,
        }
    }

    /// Scale every element by `beta` (the `beta * C` part of GEMM).
    pub fn scale(&mut self, beta: S) {
        if beta == S::ONE {
            return;
        }
        for j in 0..self.cols {
            for i in 0..self.rows {
                // SAFETY: (i, j) iterates exactly the view's rectangle,
                // which the access invariant makes exclusively ours.
                unsafe {
                    let p = self.ptr.add(j * self.ld + i);
                    *p = *p * beta;
                }
            }
        }
    }

    /// Underlying mutable slice starting at the view origin. Panics
    /// for row-split tiles (see [`MatMut::is_contiguous_view`]).
    pub fn data_mut(&mut self) -> &mut [S] {
        assert!(
            self.is_contiguous_view(),
            "split tile cannot expose a contiguous view"
        );
        // SAFETY: `span` contiguous elements from `ptr` are exclusively
        // this view's (access invariant) and the borrow is tied to
        // `&mut self`, so the slice cannot coexist with any other
        // access path through this view.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.span) }
    }

    /// Raw parts `(ptr, rows, cols, ld)` for disjoint parallel writes.
    pub fn raw_parts_mut(&mut self) -> (*mut S, usize, usize, usize) {
        (self.ptr, self.rows, self.cols, self.ld)
    }

    /// Raw pointer to element `(i0, j0)`, checked to head an
    /// `mt × nt` window inside this view.
    ///
    /// Obtaining the pointer is safe; *dereferencing* it is the
    /// caller's obligation — micro-kernels write through it with this
    /// view's leading dimension ([`MatMut::ld`]), staying inside the
    /// asserted window, which the access invariant makes exclusively
    /// this view's.
    pub fn tile_ptr(&mut self, i0: usize, j0: usize, mt: usize, nt: usize) -> *mut S {
        assert!(
            i0 + mt <= self.rows && j0 + nt <= self.cols,
            "tile window out of bounds"
        );
        if mt == 0 || nt == 0 {
            return self.ptr;
        }
        // SAFETY: the window is non-empty, so (i0, j0) is a valid
        // element of the rectangle and the offset stays inside the
        // backing allocation.
        unsafe { self.ptr.add(j0 * self.ld + i0) }
    }

    /// Consume this view and split it into a grid of *disjoint*
    /// sub-views — the `split_at_mut` of matrices, and the safe
    /// foundation of in-place parallel GEMM: each tile can move to a
    /// different pool worker, which writes its block of `C` directly
    /// (no private block, no merge pass).
    ///
    /// `row_splits` / `col_splits` are `(start, len)` ranges that must
    /// be ascending, pairwise disjoint and in bounds; gaps are allowed
    /// (the skipped elements simply become unreachable for `'a`).
    /// Empty ranges produce no tile. Returns `(row_start, col_start,
    /// tile)` triples ordered row band outer, column band inner.
    pub fn split_grid(
        self,
        row_splits: &[(usize, usize)],
        col_splits: &[(usize, usize)],
    ) -> Vec<(usize, usize, MatMut<'a, S>)> {
        let check = |splits: &[(usize, usize)], limit: usize, what: &str| {
            let mut prev_end = 0usize;
            for &(start, len) in splits {
                assert!(
                    start >= prev_end,
                    "{what} ranges must be ascending and disjoint"
                );
                let end = start.checked_add(len).expect("range end overflows");
                assert!(end <= limit, "{what} range ({start}, {len}) out of bounds");
                prev_end = end;
            }
        };
        check(row_splits, self.rows, "row");
        check(col_splits, self.cols, "column");
        let row_bands = row_splits.iter().filter(|r| r.1 > 0).count();
        let last_col_start = col_splits.iter().rev().find(|c| c.1 > 0).map_or(0, |c| c.0);
        let mut out = Vec::with_capacity(row_bands * col_splits.len().max(1));
        for &(i0, mt) in row_splits {
            if mt == 0 {
                continue;
            }
            for &(j0, nt) in col_splits {
                if nt == 0 {
                    continue;
                }
                let off = j0 * self.ld + i0;
                // The contiguous claim a tile may expose as a slice:
                // with a single row band the tiles are column bands —
                // each may claim up to the start of the next band
                // (`ld * nt` elements; the last band takes the parent's
                // whole tail). With several row bands, tiles interleave
                // column-wise, so only the first column's `mt`-element
                // run is provably free of sibling elements.
                let span = if row_bands <= 1 {
                    if j0 == last_col_start {
                        self.span.saturating_sub(off)
                    } else {
                        (self.ld * nt).min(self.span.saturating_sub(off))
                    }
                } else {
                    mt
                };
                // SAFETY: the audited unsafe of the disjoint split:
                // (1) In-bounds: the range validation above proved
                //     `i0 + mt <= rows` and `j0 + nt <= cols` with
                //     `mt, nt >= 1`, so `off` is the flat index of the
                //     live element (i0, j0) of `self` and `ptr.add(off)`
                //     stays inside the allocation backing the parent.
                // (2) Disjointness: two distinct tiles differ in their
                //     row range or their column range; validated ranges
                //     are pairwise disjoint, so the tiles' element sets
                //     `{(i, j) : i in rows(t), j in cols(t)}` never
                //     intersect. The tiles therefore partition a subset
                //     of the parent's exclusive element claim.
                // (3) No other path: `self` is consumed by value, so no
                //     handle to the parent rectangle survives; each
                //     element of the parent is claimed by at most one
                //     tile for the rest of `'a`.
                // (4) Slice claims: the `span` chosen above never
                //     reaches another tile's first element (column
                //     bands end exactly where the next band begins;
                //     interleaved tiles only claim their first-column
                //     run) and never exceeds the parent's own `span`.
                // (5) Provenance: every tile pointer derives from the
                //     parent's `ptr`, so concurrent same-provenance
                //     raw-pointer writes to disjoint elements from
                //     different threads are sound.
                let ptr = unsafe { self.ptr.add(off) };
                let tile = MatMut {
                    rows: mt,
                    cols: nt,
                    ld: self.ld,
                    span,
                    ptr,
                    _marker: PhantomData,
                };
                out.push((i0, j0, tile));
            }
        }
        out
    }
}

/// BLASFEO's panel-major storage (Fig. 3 of the paper): rows are grouped
/// into panels of `ps`; within a panel, elements are stored column by
/// column, each column contributing `ps` contiguous elements. The row
/// count is rounded up to a multiple of `ps` with explicit zeros, which
/// is exactly how BLASFEO amortizes edge handling.
#[derive(Debug, Clone, PartialEq)]
pub struct PanelMatrix<S: Scalar> {
    rows: usize,
    cols: usize,
    ps: usize,
    panels: usize,
    data: Vec<S>,
}

impl<S: Scalar> PanelMatrix<S> {
    /// Default panel size on a 128-bit SIMD machine.
    pub const DEFAULT_PS: usize = 4;

    /// Zero panel-major matrix.
    pub fn zeros(rows: usize, cols: usize, ps: usize) -> Self {
        assert!(ps >= 1);
        let panels = rows.div_ceil(ps).max(1);
        PanelMatrix {
            rows,
            cols,
            ps,
            panels,
            data: vec![S::ZERO; panels * ps * cols],
        }
    }

    /// Convert from a column-major view (the "format conversion at the
    /// very beginning" of §II-C; in BLASFEO applications the data lives
    /// in this format permanently, so it is *not* counted as packing).
    pub fn from_col_major(a: MatRef<'_, S>, ps: usize) -> Self {
        let mut p = PanelMatrix::zeros(a.rows(), a.cols(), ps);
        for j in 0..a.cols() {
            for i in 0..a.rows() {
                p.set(i, j, a.at(i, j));
            }
        }
        p
    }

    /// Number of (logical) rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Panel size.
    pub fn ps(&self) -> usize {
        self.ps
    }

    /// Flat index of element `(i, j)`.
    fn idx(&self, i: usize, j: usize) -> usize {
        let panel = i / self.ps;
        panel * (self.ps * self.cols) + j * self.ps + (i % self.ps)
    }

    /// Element access (zero in the padding region).
    pub fn at(&self, i: usize, j: usize) -> S {
        assert!(
            i < self.panels * self.ps && j < self.cols,
            "index out of bounds"
        );
        self.data[self.idx(i, j)]
    }

    /// Set an element.
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        assert!(
            i < self.panels * self.ps && j < self.cols,
            "index out of bounds"
        );
        let idx = self.idx(i, j);
        self.data[idx] = v;
    }

    /// The contiguous sliver for panel `p` (all columns): `ps` rows.
    pub fn panel(&self, p: usize) -> &[S] {
        assert!(p < self.panels, "panel out of range");
        &self.data[p * self.ps * self.cols..(p + 1) * self.ps * self.cols]
    }

    /// Number of row panels.
    pub fn num_panels(&self) -> usize {
        self.panels
    }

    /// Copy back to column-major.
    pub fn to_mat(&self) -> Mat<S> {
        Mat::from_fn(self.rows, self.cols, |i, j| self.at(i, j))
    }

    /// Raw panel-major storage (`num_panels * ps * cols` elements).
    pub fn data(&self) -> &[S] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat_indexing_is_column_major() {
        let m = Mat::<f32>::from_fn(3, 2, |i, j| (10 * i + j) as f32);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.data()[m.ld() + 2], 21.0);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Mat::<f32>::random(5, 7, 42);
        let b = Mat::<f32>::random(5, 7, 42);
        assert_eq!(a, b);
        let c = Mat::<f32>::random(5, 7, 43);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn block_views_window_correctly() {
        let m = Mat::<f32>::from_fn(6, 6, |i, j| (i * 10 + j) as f32);
        let r = m.as_ref();
        let b = r.block(2, 3, 3, 2);
        assert_eq!(b.at(0, 0), 23.0);
        assert_eq!(b.at(2, 1), 44.0);
        assert_eq!(b.rows(), 3);
    }

    #[test]
    fn mut_block_writes_through() {
        let mut m = Mat::<f32>::zeros(4, 4);
        {
            let mut v = m.as_mut();
            let mut b = v.block_mut(1, 1, 2, 2);
            b.set(0, 0, 5.0);
            b.set(1, 1, 7.0);
        }
        assert_eq!(m[(1, 1)], 5.0);
        assert_eq!(m[(2, 2)], 7.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn scale_applies_beta() {
        let mut m = Mat::<f32>::from_fn(3, 3, |i, j| (i + j) as f32);
        m.as_mut().scale(2.0);
        assert_eq!(m[(1, 2)], 6.0);
        // beta = 1 is a no-op fast path.
        m.as_mut().scale(1.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn panel_matrix_round_trips() {
        let m = Mat::<f32>::random(11, 7, 9);
        let p = PanelMatrix::from_col_major(m.as_ref(), 4);
        assert_eq!(p.num_panels(), 3);
        assert_eq!(p.to_mat(), m);
    }

    #[test]
    fn panel_padding_rows_are_zero() {
        let m = Mat::<f32>::from_fn(5, 3, |_, _| 1.0);
        let p = PanelMatrix::from_col_major(m.as_ref(), 4);
        // Rows 5..8 are padding.
        for j in 0..3 {
            for i in 5..8 {
                assert_eq!(p.at(i, j), 0.0);
            }
        }
    }

    #[test]
    fn panel_layout_is_ps_contiguous_per_column() {
        let m = Mat::<f32>::from_fn(8, 2, |i, j| (i * 100 + j) as f32);
        let p = PanelMatrix::from_col_major(m.as_ref(), 4);
        let first = p.panel(0);
        // Panel 0, column 0 holds rows 0..4 contiguously.
        assert_eq!(&first[0..4], &[0.0, 100.0, 200.0, 300.0]);
        // Panel 0, column 1 follows.
        assert_eq!(&first[4..8], &[1.0, 101.0, 201.0, 301.0]);
    }

    #[test]
    fn matref_from_slice_validates() {
        let data = vec![0.0f32; 12];
        let r = MatRef::from_slice(&data, 3, 4, 3);
        assert_eq!(r.rows(), 3);
    }

    #[test]
    #[should_panic(expected = "slice too short")]
    fn matref_rejects_short_slices() {
        let data = vec![0.0f32; 5];
        MatRef::from_slice(&data, 3, 4, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_bounds_checked() {
        let m = Mat::<f32>::zeros(4, 4);
        m.as_ref().block(2, 2, 3, 1);
    }

    #[test]
    fn max_abs_diff_reports_worst_entry() {
        let a = Mat::<f32>::zeros(2, 2);
        let mut b = Mat::<f32>::zeros(2, 2);
        b[(1, 0)] = -0.5;
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    fn split_grid_tiles_cover_and_write_through() {
        let mut m = Mat::<f32>::zeros(7, 5);
        let tiles = m.as_mut().split_grid(&[(0, 3), (3, 4)], &[(0, 2), (2, 3)]);
        assert_eq!(tiles.len(), 4);
        for (i0, j0, mut t) in tiles {
            for j in 0..t.cols() {
                for i in 0..t.rows() {
                    t.set(i, j, ((i0 + i) * 10 + j0 + j) as f32);
                }
            }
        }
        for j in 0..5 {
            for i in 0..7 {
                assert_eq!(m[(i, j)], (i * 10 + j) as f32);
            }
        }
    }

    #[test]
    fn split_grid_concurrent_disjoint_writes() {
        // Each tile goes to its own thread; all writes land and no
        // element is touched twice. Run under Miri to check the raw
        // same-provenance pointer scheme.
        let mut m = Mat::<f32>::zeros(8, 6);
        let tiles = m.as_mut().split_grid(&[(0, 5), (5, 3)], &[(0, 4), (4, 2)]);
        std::thread::scope(|s| {
            for (i0, j0, mut t) in tiles {
                s.spawn(move || {
                    for j in 0..t.cols() {
                        for i in 0..t.rows() {
                            t.set(i, j, ((i0 + i) + 100 * (j0 + j)) as f32);
                        }
                    }
                });
            }
        });
        for j in 0..6 {
            for i in 0..8 {
                assert_eq!(m[(i, j)], (i + 100 * j) as f32);
            }
        }
    }

    #[test]
    fn split_grid_skips_empty_ranges_and_allows_gaps() {
        let mut m = Mat::<f32>::from_fn(6, 4, |_, _| 1.0);
        // Empty row band and a column gap (column 1 unassigned).
        let tiles = m
            .as_mut()
            .split_grid(&[(0, 2), (2, 0), (2, 4)], &[(0, 1), (2, 2)]);
        assert_eq!(tiles.len(), 4);
        for (_, _, mut t) in tiles {
            assert!(t.rows() > 0 && t.cols() > 0);
            t.scale(0.0);
        }
        for i in 0..6 {
            assert_eq!(m[(i, 1)], 1.0, "gap column must be untouched");
            assert_eq!(m[(i, 0)], 0.0);
            assert_eq!(m[(i, 3)], 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "ascending and disjoint")]
    fn split_grid_rejects_overlapping_ranges() {
        let mut m = Mat::<f32>::zeros(6, 6);
        m.as_mut().split_grid(&[(0, 4), (3, 2)], &[(0, 6)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn split_grid_rejects_out_of_bounds_ranges() {
        let mut m = Mat::<f32>::zeros(6, 6);
        m.as_mut().split_grid(&[(0, 6)], &[(4, 3)]);
    }

    #[test]
    fn split_grid_column_bands_keep_contiguous_views() {
        // A single row band splits into column bands, which stay
        // contiguous: rb()/data_mut() must still work on them.
        let mut m = Mat::<f32>::from_fn(4, 6, |i, j| (i + j) as f32);
        let tiles = m.as_mut().split_grid(&[(0, 4)], &[(0, 3), (3, 3)]);
        for (_, j0, mut t) in tiles {
            assert!(t.is_contiguous_view());
            assert_eq!(t.rb().at(1, 1), (1 + j0 + 1) as f32);
            t.data_mut()[0] = -1.0;
        }
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(0, 3)], -1.0);
    }

    #[test]
    #[should_panic(expected = "contiguous view")]
    fn split_grid_row_tiles_refuse_slice_exposure() {
        let mut m = Mat::<f32>::zeros(6, 4);
        let mut tiles = m.as_mut().split_grid(&[(0, 3), (3, 3)], &[(0, 4)]);
        let (_, _, t) = &mut tiles[0];
        assert!(!t.is_contiguous_view());
        t.data_mut();
    }

    #[test]
    fn tile_ptr_window_is_bounds_checked() {
        let mut m = Mat::<f32>::zeros(4, 4);
        let mut v = m.as_mut();
        let p = v.tile_ptr(1, 2, 3, 2);
        // SAFETY: (1, 2) heads a 3x2 window inside the 4x4 view, and
        // `v` holds exclusive access to it; ld = 4.
        unsafe { *p = 9.0 };
        let _ = v;
        assert_eq!(m[(1, 2)], 9.0);
    }

    #[test]
    #[should_panic(expected = "tile window out of bounds")]
    fn tile_ptr_rejects_oversized_windows() {
        let mut m = Mat::<f32>::zeros(4, 4);
        m.as_mut().tile_ptr(2, 0, 3, 1);
    }
}
