//! Matrix storage: column-major views and BLASFEO's panel-major format.

use smm_kernels::Scalar;

/// An owned column-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat<S: Scalar> {
    rows: usize,
    cols: usize,
    ld: usize,
    data: Vec<S>,
}

impl<S: Scalar> Mat<S> {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            ld: rows.max(1),
            data: vec![S::ZERO; rows.max(1) * cols],
        }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Deterministic pseudo-random test matrix with small values.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            S::from_f64(((state >> 33) as i64 % 19 - 9) as f64 * 0.125)
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (stride between columns).
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Immutable view.
    pub fn as_ref(&self) -> MatRef<'_, S> {
        MatRef {
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            data: &self.data,
        }
    }

    /// Mutable view.
    pub fn as_mut(&mut self) -> MatMut<'_, S> {
        MatMut {
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            data: &mut self.data,
        }
    }

    /// Raw storage (column-major, `ld * cols`).
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Largest absolute elementwise difference against another matrix.
    pub fn max_abs_diff(&self, other: &Mat<S>) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let mut worst = 0.0f64;
        for j in 0..self.cols {
            for i in 0..self.rows {
                let d = (self[(i, j)].to_f64() - other[(i, j)].to_f64()).abs();
                worst = worst.max(d);
            }
        }
        worst
    }
}

impl<S: Scalar> std::ops::Index<(usize, usize)> for Mat<S> {
    type Output = S;

    fn index(&self, (i, j): (usize, usize)) -> &S {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[j * self.ld + i]
    }
}

impl<S: Scalar> std::ops::IndexMut<(usize, usize)> for Mat<S> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[j * self.ld + i]
    }
}

/// Borrowed column-major view.
#[derive(Debug, Clone, Copy)]
pub struct MatRef<'a, S: Scalar> {
    rows: usize,
    cols: usize,
    ld: usize,
    data: &'a [S],
}

impl<'a, S: Scalar> MatRef<'a, S> {
    /// View over a raw column-major slice.
    pub fn from_slice(data: &'a [S], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1), "leading dimension too small");
        assert!(
            data.len() >= ld * cols.saturating_sub(1) + rows,
            "slice too short"
        );
        MatRef {
            rows,
            cols,
            ld,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension.
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element access.
    pub fn at(&self, i: usize, j: usize) -> S {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i]
    }

    /// Sub-view of `nrows × ncols` starting at `(i0, j0)`.
    pub fn block(&self, i0: usize, j0: usize, nrows: usize, ncols: usize) -> MatRef<'a, S> {
        assert!(
            i0 + nrows <= self.rows && j0 + ncols <= self.cols,
            "block out of bounds"
        );
        MatRef {
            rows: nrows,
            cols: ncols,
            ld: self.ld,
            data: &self.data[j0 * self.ld + i0..],
        }
    }

    /// Underlying slice starting at the view origin.
    pub fn data(&self) -> &'a [S] {
        self.data
    }
}

/// Borrowed mutable column-major view.
#[derive(Debug)]
pub struct MatMut<'a, S: Scalar> {
    rows: usize,
    cols: usize,
    ld: usize,
    data: &'a mut [S],
}

impl<'a, S: Scalar> MatMut<'a, S> {
    /// View over a raw column-major slice.
    pub fn from_slice(data: &'a mut [S], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1), "leading dimension too small");
        assert!(
            data.len() >= ld * cols.saturating_sub(1) + rows,
            "slice too short"
        );
        MatMut {
            rows,
            cols,
            ld,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension.
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element access.
    pub fn at(&self, i: usize, j: usize) -> S {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i]
    }

    /// Set one element.
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i] = v;
    }

    /// Reborrow as immutable.
    pub fn rb(&self) -> MatRef<'_, S> {
        MatRef {
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            data: self.data,
        }
    }

    /// Reborrow mutably (shorter lifetime).
    pub fn rb_mut(&mut self) -> MatMut<'_, S> {
        MatMut {
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            data: self.data,
        }
    }

    /// Mutable sub-view.
    pub fn block_mut(&mut self, i0: usize, j0: usize, nrows: usize, ncols: usize) -> MatMut<'_, S> {
        assert!(
            i0 + nrows <= self.rows && j0 + ncols <= self.cols,
            "block out of bounds"
        );
        MatMut {
            rows: nrows,
            cols: ncols,
            ld: self.ld,
            data: &mut self.data[j0 * self.ld + i0..],
        }
    }

    /// Scale every element by `beta` (the `beta * C` part of GEMM).
    pub fn scale(&mut self, beta: S) {
        if beta == S::ONE {
            return;
        }
        for j in 0..self.cols {
            for i in 0..self.rows {
                let v = self.data[j * self.ld + i];
                self.data[j * self.ld + i] = v * beta;
            }
        }
    }

    /// Underlying mutable slice starting at the view origin.
    pub fn data_mut(&mut self) -> &mut [S] {
        self.data
    }

    /// Raw parts `(ptr, rows, cols, ld)` for disjoint parallel writes.
    pub fn raw_parts_mut(&mut self) -> (*mut S, usize, usize, usize) {
        (self.data.as_mut_ptr(), self.rows, self.cols, self.ld)
    }
}

/// BLASFEO's panel-major storage (Fig. 3 of the paper): rows are grouped
/// into panels of `ps`; within a panel, elements are stored column by
/// column, each column contributing `ps` contiguous elements. The row
/// count is rounded up to a multiple of `ps` with explicit zeros, which
/// is exactly how BLASFEO amortizes edge handling.
#[derive(Debug, Clone, PartialEq)]
pub struct PanelMatrix<S: Scalar> {
    rows: usize,
    cols: usize,
    ps: usize,
    panels: usize,
    data: Vec<S>,
}

impl<S: Scalar> PanelMatrix<S> {
    /// Default panel size on a 128-bit SIMD machine.
    pub const DEFAULT_PS: usize = 4;

    /// Zero panel-major matrix.
    pub fn zeros(rows: usize, cols: usize, ps: usize) -> Self {
        assert!(ps >= 1);
        let panels = rows.div_ceil(ps).max(1);
        PanelMatrix {
            rows,
            cols,
            ps,
            panels,
            data: vec![S::ZERO; panels * ps * cols],
        }
    }

    /// Convert from a column-major view (the "format conversion at the
    /// very beginning" of §II-C; in BLASFEO applications the data lives
    /// in this format permanently, so it is *not* counted as packing).
    pub fn from_col_major(a: MatRef<'_, S>, ps: usize) -> Self {
        let mut p = PanelMatrix::zeros(a.rows(), a.cols(), ps);
        for j in 0..a.cols() {
            for i in 0..a.rows() {
                p.set(i, j, a.at(i, j));
            }
        }
        p
    }

    /// Number of (logical) rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Panel size.
    pub fn ps(&self) -> usize {
        self.ps
    }

    /// Flat index of element `(i, j)`.
    fn idx(&self, i: usize, j: usize) -> usize {
        let panel = i / self.ps;
        panel * (self.ps * self.cols) + j * self.ps + (i % self.ps)
    }

    /// Element access (zero in the padding region).
    pub fn at(&self, i: usize, j: usize) -> S {
        assert!(
            i < self.panels * self.ps && j < self.cols,
            "index out of bounds"
        );
        self.data[self.idx(i, j)]
    }

    /// Set an element.
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        assert!(
            i < self.panels * self.ps && j < self.cols,
            "index out of bounds"
        );
        let idx = self.idx(i, j);
        self.data[idx] = v;
    }

    /// The contiguous sliver for panel `p` (all columns): `ps` rows.
    pub fn panel(&self, p: usize) -> &[S] {
        assert!(p < self.panels, "panel out of range");
        &self.data[p * self.ps * self.cols..(p + 1) * self.ps * self.cols]
    }

    /// Number of row panels.
    pub fn num_panels(&self) -> usize {
        self.panels
    }

    /// Copy back to column-major.
    pub fn to_mat(&self) -> Mat<S> {
        Mat::from_fn(self.rows, self.cols, |i, j| self.at(i, j))
    }

    /// Raw panel-major storage (`num_panels * ps * cols` elements).
    pub fn data(&self) -> &[S] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat_indexing_is_column_major() {
        let m = Mat::<f32>::from_fn(3, 2, |i, j| (10 * i + j) as f32);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.data()[m.ld() + 2], 21.0);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Mat::<f32>::random(5, 7, 42);
        let b = Mat::<f32>::random(5, 7, 42);
        assert_eq!(a, b);
        let c = Mat::<f32>::random(5, 7, 43);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn block_views_window_correctly() {
        let m = Mat::<f32>::from_fn(6, 6, |i, j| (i * 10 + j) as f32);
        let r = m.as_ref();
        let b = r.block(2, 3, 3, 2);
        assert_eq!(b.at(0, 0), 23.0);
        assert_eq!(b.at(2, 1), 44.0);
        assert_eq!(b.rows(), 3);
    }

    #[test]
    fn mut_block_writes_through() {
        let mut m = Mat::<f32>::zeros(4, 4);
        {
            let mut v = m.as_mut();
            let mut b = v.block_mut(1, 1, 2, 2);
            b.set(0, 0, 5.0);
            b.set(1, 1, 7.0);
        }
        assert_eq!(m[(1, 1)], 5.0);
        assert_eq!(m[(2, 2)], 7.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn scale_applies_beta() {
        let mut m = Mat::<f32>::from_fn(3, 3, |i, j| (i + j) as f32);
        m.as_mut().scale(2.0);
        assert_eq!(m[(1, 2)], 6.0);
        // beta = 1 is a no-op fast path.
        m.as_mut().scale(1.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn panel_matrix_round_trips() {
        let m = Mat::<f32>::random(11, 7, 9);
        let p = PanelMatrix::from_col_major(m.as_ref(), 4);
        assert_eq!(p.num_panels(), 3);
        assert_eq!(p.to_mat(), m);
    }

    #[test]
    fn panel_padding_rows_are_zero() {
        let m = Mat::<f32>::from_fn(5, 3, |_, _| 1.0);
        let p = PanelMatrix::from_col_major(m.as_ref(), 4);
        // Rows 5..8 are padding.
        for j in 0..3 {
            for i in 5..8 {
                assert_eq!(p.at(i, j), 0.0);
            }
        }
    }

    #[test]
    fn panel_layout_is_ps_contiguous_per_column() {
        let m = Mat::<f32>::from_fn(8, 2, |i, j| (i * 100 + j) as f32);
        let p = PanelMatrix::from_col_major(m.as_ref(), 4);
        let first = p.panel(0);
        // Panel 0, column 0 holds rows 0..4 contiguously.
        assert_eq!(&first[0..4], &[0.0, 100.0, 200.0, 300.0]);
        // Panel 0, column 1 follows.
        assert_eq!(&first[4..8], &[1.0, 101.0, 201.0, 301.0]);
    }

    #[test]
    fn matref_from_slice_validates() {
        let data = vec![0.0f32; 12];
        let r = MatRef::from_slice(&data, 3, 4, 3);
        assert_eq!(r.rows(), 3);
    }

    #[test]
    #[should_panic(expected = "slice too short")]
    fn matref_rejects_short_slices() {
        let data = vec![0.0f32; 5];
        MatRef::from_slice(&data, 3, 4, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_bounds_checked() {
        let m = Mat::<f32>::zeros(4, 4);
        m.as_ref().block(2, 2, 3, 1);
    }

    #[test]
    fn max_abs_diff_reports_worst_entry() {
        let a = Mat::<f32>::zeros(2, 2);
        let mut b = Mat::<f32>::zeros(2, 2);
        b[(1, 0)] = -0.5;
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
