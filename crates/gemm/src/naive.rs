//! Reference GEMM: the straightforward three-nested loop.
//!
//! Used as the correctness oracle for every optimized strategy.

use smm_kernels::Scalar;

use crate::matrix::{MatMut, MatRef};

/// `C = alpha * A * B + beta * C` with a plain triple loop.
pub fn gemm_naive<S: Scalar>(
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    mut c: MatMut<'_, S>,
) {
    let (m, k, n) = check_dims(&a, &b, &c.rb());
    c.scale(beta);
    for j in 0..n {
        for p in 0..k {
            let bpj = alpha * b.at(p, j);
            for i in 0..m {
                let v = c.at(i, j).madd(a.at(i, p), bpj);
                c.set(i, j, v);
            }
        }
    }
}

/// Validate GEMM operand shapes; returns `(m, k, n)`.
pub fn check_dims<S: Scalar>(
    a: &MatRef<'_, S>,
    b: &MatRef<'_, S>,
    c: &MatRef<'_, S>,
) -> (usize, usize, usize) {
    check_dims_of(a, b, c.rows(), c.cols())
}

/// [`check_dims`] against C dimensions given directly — usable when C
/// is a split tile that cannot expose a `MatRef`.
pub fn check_dims_of<S: Scalar>(
    a: &MatRef<'_, S>,
    b: &MatRef<'_, S>,
    c_rows: usize,
    c_cols: usize,
) -> (usize, usize, usize) {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(
        k, kb,
        "inner dimensions disagree: A is {m}x{k}, B is {kb}x{n}"
    );
    assert_eq!(c_rows, m, "C has {c_rows} rows, expected {m}");
    assert_eq!(c_cols, n, "C has {c_cols} cols, expected {n}");
    (m, k, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;

    #[test]
    fn two_by_two_by_hand() {
        let a = Mat::<f32>::from_fn(2, 2, |i, j| (i * 2 + j + 1) as f32); // [[1,2],[3,4]]
        let b = Mat::<f32>::from_fn(2, 2, |i, j| (i * 2 + j + 5) as f32); // [[5,6],[7,8]]
        let mut c = Mat::<f32>::zeros(2, 2);
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = Mat::<f32>::from_fn(1, 1, |_, _| 3.0);
        let b = Mat::<f32>::from_fn(1, 1, |_, _| 4.0);
        let mut c = Mat::<f32>::from_fn(1, 1, |_, _| 10.0);
        gemm_naive(2.0, a.as_ref(), b.as_ref(), 0.5, c.as_mut());
        // 2*12 + 0.5*10 = 29.
        assert_eq!(c[(0, 0)], 29.0);
    }

    #[test]
    fn identity_preserves() {
        let a = Mat::<f64>::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = Mat::<f64>::random(4, 6, 3);
        let mut c = Mat::<f64>::zeros(4, 6);
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        assert_eq!(c.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn degenerate_k_zero_only_scales_c() {
        let a = Mat::<f32>::zeros(3, 0);
        let b = Mat::<f32>::zeros(0, 2);
        let mut c = Mat::<f32>::from_fn(3, 2, |_, _| 4.0);
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.25, c.as_mut());
        assert_eq!(c[(2, 1)], 1.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Mat::<f32>::zeros(2, 3);
        let b = Mat::<f32>::zeros(4, 2);
        let mut c = Mat::<f32>::zeros(2, 2);
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    }
}
