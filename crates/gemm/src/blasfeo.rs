//! The BLASFEO strategy.
//!
//! BLASFEO targets embedded optimization workloads where the same small
//! matrices are reused many times, so it stores operands permanently in
//! the *panel-major* format (Fig. 3) and skips Layers 1–3 of the Goto
//! structure entirely: no packing phase at all, kernels stream directly
//! from the panel-major operands with vector loads on both sides.
//! Rows are padded to the panel size `ps = 4`, so edges cost padded
//! flops rather than special kernels. Only single-threaded routines are
//! provided (§II-C).

use smm_kernels::registry::LibraryProfile;
use smm_kernels::trace_gen::KernelTraceParams;
use smm_kernels::{MicroKernelDesc, Scalar};
use smm_simarch::phase::Phase;

use crate::matrix::{Mat, MatMut, MatRef, PanelMatrix};
use crate::naive::check_dims;
use crate::sim::{GemmLayout, MacroOp, SimJob, ELEM};
use crate::strategy::Strategy;

/// The BLASFEO-style implementation.
#[derive(Debug, Clone)]
pub struct BlasfeoStrategy {
    profile: LibraryProfile,
}

impl BlasfeoStrategy {
    /// Build the profile of Table I.
    pub fn new() -> Self {
        BlasfeoStrategy {
            profile: LibraryProfile::blasfeo(),
        }
    }

    /// `C = alpha·A·B + beta·C` directly on panel-major operands — the
    /// native BLASFEO interface where no conversion cost exists because
    /// the application keeps its data panel-major.
    #[allow(clippy::needless_range_loop)]
    pub fn gemm_panel<S: Scalar>(
        &self,
        alpha: S,
        a: &PanelMatrix<S>,
        b: &PanelMatrix<S>,
        beta: S,
        c: &mut PanelMatrix<S>,
    ) {
        let (m, k) = (a.rows(), a.cols());
        let (kb, n) = (b.rows(), b.cols());
        assert_eq!(k, kb, "inner dimensions disagree");
        assert_eq!((c.rows(), c.cols()), (m, n), "C shape mismatch");
        let ps = a.ps();
        assert!(ps == b.ps() && ps == c.ps(), "panel sizes must agree");

        let a_data = a.data();
        let b_data = b.data();
        // Process C panel-by-panel (ps rows), 4 columns at a time, with
        // a ps x 4 register tile -- the 4x4-flavoured BLASFEO kernel.
        for cp in 0..c.num_panels() {
            let rows_here = ps.min(m.saturating_sub(cp * ps));
            if rows_here == 0 {
                continue;
            }
            let mut j = 0;
            while j < n {
                let jw = 4.min(n - j);
                let mut acc = [[S::ZERO; 4]; 8];
                debug_assert!(ps <= 8);
                for p in 0..k {
                    // A panel cp, column p: ps contiguous values.
                    let a_off = cp * (ps * k) + p * ps;
                    // B row p lives in panel p/ps at lane p%ps.
                    let b_panel = p / ps;
                    let b_lane = p % ps;
                    for jj in 0..jw {
                        let bv = b_data[b_panel * (ps * n) + (j + jj) * ps + b_lane];
                        for i in 0..rows_here {
                            acc[i][jj] = acc[i][jj].madd(a_data[a_off + i], bv);
                        }
                    }
                }
                for jj in 0..jw {
                    for i in 0..rows_here {
                        let gi = cp * ps + i;
                        let v = c.at(gi, j + jj) * beta + alpha * acc[i][jj];
                        c.set(gi, j + jj, v);
                    }
                }
                j += jw;
            }
        }
    }
}

impl Default for BlasfeoStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> Strategy<S> for BlasfeoStrategy {
    fn name(&self) -> &'static str {
        "BLASFEO"
    }

    fn supports_threads(&self) -> bool {
        false
    }

    fn gemm(
        &self,
        alpha: S,
        a: MatRef<'_, S>,
        b: MatRef<'_, S>,
        beta: S,
        mut c: MatMut<'_, S>,
        threads: usize,
    ) {
        assert!(
            threads <= 1,
            "BLASFEO provides only single-threaded SMM routines"
        );
        check_dims(&a, &b, &c.rb());
        // Column-major façade: convert at the boundary. In a BLASFEO
        // application the operands are *kept* panel-major, so this
        // conversion is the caller's storage decision, not packing.
        let pa = PanelMatrix::from_col_major(a, PanelMatrix::<S>::DEFAULT_PS);
        let pb = PanelMatrix::from_col_major(b, PanelMatrix::<S>::DEFAULT_PS);
        let mut pc = PanelMatrix::from_col_major(c.rb(), PanelMatrix::<S>::DEFAULT_PS);
        self.gemm_panel(alpha, &pa, &pb, beta, &mut pc);
        let out: Mat<S> = pc.to_mat();
        for j in 0..c.cols() {
            for i in 0..c.rows() {
                c.set(i, j, out[(i, j)]);
            }
        }
    }

    fn sim(&self, m: usize, n: usize, k: usize, threads: usize) -> SimJob {
        assert!(
            threads <= 1,
            "BLASFEO provides only single-threaded SMM routines (§II-C of the paper)"
        );
        build_sim(&self.profile, m, n, k)
    }
}

/// Decompose `len` into BLASFEO m-tiles: greedy full steps, remainder
/// padded up to the smallest available step (itself a multiple of
/// `ps = 4`).
fn blasfeo_tiles(len: usize, steps: &[usize]) -> Vec<(usize, usize, usize)> {
    // (offset, logical, kernel)
    let mut out = Vec::new();
    let biggest = steps[0];
    let mut off = 0;
    while len - off >= biggest {
        out.push((off, biggest, biggest));
        off += biggest;
    }
    let rem = len - off;
    if rem > 0 {
        let kernel = steps
            .iter()
            .rev()
            .copied()
            .find(|&s| s >= rem)
            .unwrap_or(biggest);
        out.push((off, rem, kernel));
    }
    out
}

fn build_sim(profile: &LibraryProfile, m: usize, n: usize, k: usize) -> SimJob {
    assert!(m > 0 && n > 0 && k > 0, "empty GEMM");
    // Operands are panel-major with rows padded to ps; footprint uses
    // the padded sizes.
    let m_pad = m.div_ceil(4) * 4;
    let n_pad = n.div_ceil(4) * 4;
    let lay = GemmLayout::col_major(m_pad, n_pad, k);

    let m_tiles = blasfeo_tiles(m, &[16, 8, 4]);
    let n_tiles = blasfeo_tiles(n, &[4]);
    let mut prog = Vec::new();
    for &(io, _ml, mk) in &m_tiles {
        for &(jo, _nl, nk) in &n_tiles {
            // Panel-major: the tile's A rows and B columns are stored
            // contiguously k-major, and the C tile is contiguous too.
            let desc = MicroKernelDesc::new(
                mk,
                nk,
                profile.main.unroll,
                profile.main.policy,
                profile.main.b_load,
            );
            prog.push(MacroOp::Kernel(KernelTraceParams {
                desc,
                kc: k,
                a_base: lay.a + (io * k) as u64 * ELEM,
                a_kstep: (mk as u64) * ELEM,
                b_base: lay.b + (jo * k) as u64 * ELEM,
                b_kstep: (nk as u64) * ELEM,
                b_jstride: ELEM,
                c_base: lay.c + (io * n_pad + jo * mk) as u64 * ELEM,
                c_col_stride: (mk as u64) * ELEM,
                elem: ELEM,
                phase: Phase::Kernel,
            }));
        }
    }

    SimJob {
        programs: vec![prog],
        useful_flops: 2.0 * m as f64 * n as f64 * k as f64,
        label: format!("BLASFEO {m}x{n}x{k}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::gemm_naive;
    use smm_simarch::phase::Phase as Ph;

    #[test]
    fn panel_gemm_matches_naive() {
        let a = Mat::<f32>::random(13, 9, 1);
        let b = Mat::<f32>::random(9, 11, 2);
        let mut c = Mat::<f32>::random(13, 11, 3);
        let mut c_ref = c.clone();
        let s = BlasfeoStrategy::new();
        Strategy::<f32>::gemm(&s, 1.5, a.as_ref(), b.as_ref(), 0.5, c.as_mut(), 1);
        gemm_naive(1.5, a.as_ref(), b.as_ref(), 0.5, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn panel_api_direct() {
        let a = Mat::<f32>::random(8, 8, 4);
        let b = Mat::<f32>::random(8, 8, 5);
        let pa = PanelMatrix::from_col_major(a.as_ref(), 4);
        let pb = PanelMatrix::from_col_major(b.as_ref(), 4);
        let mut pc = PanelMatrix::zeros(8, 8, 4);
        let s = BlasfeoStrategy::new();
        s.gemm_panel(1.0, &pa, &pb, 0.0, &mut pc);
        let mut c_ref = Mat::<f32>::zeros(8, 8);
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(pc.to_mat().max_abs_diff(&c_ref) < 1e-4);
    }

    #[test]
    fn odd_shapes_survive_panel_padding() {
        for &(m, n, k) in &[(1, 1, 1), (5, 3, 7), (17, 13, 6), (75, 60, 60)] {
            let a = Mat::<f32>::random(m, k, 10);
            let b = Mat::<f32>::random(k, n, 11);
            let mut c = Mat::<f32>::random(m, n, 12);
            let mut c_ref = c.clone();
            let s = BlasfeoStrategy::new();
            Strategy::<f32>::gemm(&s, 1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut(), 1);
            gemm_naive(1.0, a.as_ref(), b.as_ref(), 1.0, c_ref.as_mut());
            assert!(c.max_abs_diff(&c_ref) < 1e-3, "{m}x{n}x{k}");
        }
    }

    #[test]
    fn sim_has_zero_packing() {
        let s = BlasfeoStrategy::new();
        let report = Strategy::<f32>::sim(&s, 32, 32, 32, 1).run();
        let b = report.total_breakdown();
        assert_eq!(b.get(Ph::PackA), 0);
        assert_eq!(b.get(Ph::PackB), 0);
        assert!(b.get(Ph::Kernel) > 0);
    }

    #[test]
    fn sim_efficiency_is_high_for_aligned_smm() {
        let s = BlasfeoStrategy::new();
        let report = Strategy::<f32>::sim(&s, 64, 64, 64, 1).run();
        // Useful flops per cycle vs 8 flops/cycle peak.
        let eff = report.gflops(report_flops(64, 64, 64), 2.2e9) / 17.6;
        assert!(eff > 0.6, "BLASFEO aligned 64³ efficiency {eff}");
    }

    fn report_flops(m: usize, n: usize, k: usize) -> f64 {
        2.0 * (m * n * k) as f64
    }

    #[test]
    fn tiles_pad_remainders_to_small_kernels() {
        let t = blasfeo_tiles(75, &[16, 8, 4]);
        let covered: usize = t.iter().map(|&(_, l, _)| l).sum();
        assert_eq!(covered, 75);
        // Remainder 11 uses the 16-kernel (smallest >= 11).
        assert_eq!(t.last().unwrap().2, 16);
        let t2 = blasfeo_tiles(7, &[16, 8, 4]);
        assert_eq!(t2, vec![(0, 7, 8)]);
    }

    #[test]
    #[should_panic(expected = "single-threaded")]
    fn multithreaded_sim_rejected() {
        let s = BlasfeoStrategy::new();
        let _ = Strategy::<f32>::sim(&s, 8, 8, 8, 4);
    }
}
