//! The native Goto-algorithm GEMM engine.
//!
//! Implements the six-loop blocking structure of Fig. 4 — `nc`/`kc`/`mc`
//! blocking with packed `Ã`/`B̃` operands, a GEBP inner kernel walking
//! `nr`-slivers and `mr`-panels — parameterized by a
//! [`LibraryProfile`]: kernel shape, edge strategy (dedicated edge
//! kernels vs. zero padding) and the dimension steps each library
//! supports. The four library strategies share this engine with
//! different profiles.

use smm_kernels::registry::{tile_dimension_into, LibraryProfile, TileSpan};
use smm_kernels::{Kernel, Scalar};
use smm_model::{derive_blocking, BlockingParams, CacheSizes};

use crate::arena;
use crate::matrix::{MatMut, MatRef};
use crate::naive::check_dims_of;

/// A configured Goto engine.
#[derive(Debug, Clone)]
pub struct GotoEngine {
    /// Library strategy parameters.
    pub profile: LibraryProfile,
    /// Cache blocking parameters (before per-problem clipping).
    pub blocking: BlockingParams,
}

impl GotoEngine {
    /// Engine for a profile with blocking derived from the Phytium
    /// 2000+ cache sizes (the reproduction target).
    pub fn with_profile(profile: LibraryProfile) -> Self {
        let blocking = derive_blocking(
            CacheSizes::phytium_2000_plus(),
            profile.main.mr(),
            profile.main.nr(),
            4,
        );
        GotoEngine { profile, blocking }
    }

    /// `C = alpha·A·B + beta·C`, single threaded.
    pub fn gemm<S: Scalar>(
        &self,
        alpha: S,
        a: MatRef<'_, S>,
        b: MatRef<'_, S>,
        beta: S,
        mut c: MatMut<'_, S>,
    ) {
        let (m, k, n) = check_dims_of(&a, &b, c.rows(), c.cols());
        c.scale(beta);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let bp = self.blocking.clipped(m, n, k);
        let mr = self.profile.main.mr();
        let nr = self.profile.main.nr();
        let edge = self.profile.edge;

        // All working storage comes from the thread-local arena, so a
        // warmed-up steady state allocates nothing per call.
        let kc_max = bp.kc.min(k);
        let step_max = self
            .profile
            .m_steps
            .iter()
            .chain(self.profile.n_steps.iter())
            .copied()
            .max()
            .unwrap_or(0)
            .max(mr)
            .max(nr);
        let mut packed_b = arena::checkout::<S>(kc_max * (bp.nc.min(n) + nr));
        let mut packed_a = arena::checkout::<S>(kc_max * (bp.mc.min(m) + mr));
        let mut tmp = arena::checkout::<S>(kc_max * step_max);
        let mut scratch = arena::checkout::<S>(mr * nr.max(16));
        scratch.resize(mr * nr.max(16), S::ZERO);
        let mut n_tiles =
            arena::checkout::<TileSpan>(bp.nc.min(n) / nr + self.profile.n_steps.len() + 1);
        let mut m_tiles =
            arena::checkout::<TileSpan>(bp.mc.min(m) / mr + self.profile.m_steps.len() + 1);
        let mut a_offsets = arena::checkout::<usize>(8);
        let mut b_offsets = arena::checkout::<usize>(8);

        let mut jj = 0;
        while jj < n {
            let nc_cur = bp.nc.min(n - jj);
            tile_dimension_into(nc_cur, nr, edge, &self.profile.n_steps, &mut n_tiles);
            let mut kk = 0;
            while kk < k {
                let kc_cur = bp.kc.min(k - kk);
                pack_b_tiles(
                    b,
                    kk,
                    jj,
                    kc_cur,
                    &n_tiles,
                    &mut packed_b,
                    &mut tmp,
                    &mut b_offsets,
                );
                let mut ii = 0;
                while ii < m {
                    let mc_cur = bp.mc.min(m - ii);
                    tile_dimension_into(mc_cur, mr, edge, &self.profile.m_steps, &mut m_tiles);
                    pack_a_tiles(
                        a,
                        ii,
                        kk,
                        kc_cur,
                        &m_tiles,
                        &mut packed_a,
                        &mut tmp,
                        &mut a_offsets,
                    );
                    // GEBP: all (sliver, panel) pairs.
                    for (jt_idx, jt) in n_tiles.iter().enumerate() {
                        for (it_idx, it) in m_tiles.iter().enumerate() {
                            let a_sl = &packed_a[a_offsets[it_idx]..][..it.kernel * kc_cur];
                            let b_sl = &packed_b[b_offsets[jt_idx]..][..jt.kernel * kc_cur];
                            let kernel = Kernel::<S>::for_shape(it.kernel, jt.kernel);
                            run_tile(
                                kernel,
                                kc_cur,
                                alpha,
                                a_sl,
                                b_sl,
                                it,
                                jt,
                                ii,
                                jj,
                                &mut c,
                                &mut scratch,
                            );
                        }
                    }
                    ii += mc_cur;
                }
                kk += kc_cur;
            }
            jj += nc_cur;
        }
    }
}

/// Pack the A panels for a list of M tiles; per-tile offsets into
/// `out` land in `offsets` (cleared first).
#[allow(clippy::too_many_arguments)]
fn pack_a_tiles<S: Scalar>(
    a: MatRef<'_, S>,
    ii: usize,
    kk: usize,
    kc: usize,
    tiles: &[TileSpan],
    out: &mut Vec<S>,
    tmp: &mut Vec<S>,
    offsets: &mut Vec<usize>,
) {
    out.clear();
    offsets.clear();
    for t in tiles {
        offsets.push(out.len());
        crate::pack::pack_a(a, ii + t.offset, kk, t.logical, kc, t.kernel, tmp);
        out.extend_from_slice(tmp);
    }
}

/// Pack the B slivers for a list of N tiles; per-tile offsets into
/// `out` land in `offsets` (cleared first).
#[allow(clippy::too_many_arguments)]
fn pack_b_tiles<S: Scalar>(
    b: MatRef<'_, S>,
    kk: usize,
    jj: usize,
    kc: usize,
    tiles: &[TileSpan],
    out: &mut Vec<S>,
    tmp: &mut Vec<S>,
    offsets: &mut Vec<usize>,
) {
    out.clear();
    offsets.clear();
    for t in tiles {
        offsets.push(out.len());
        crate::pack::pack_b(b, kk, jj + t.offset, kc, t.logical, t.kernel, tmp);
        out.extend_from_slice(tmp);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_tile<S: Scalar>(
    kernel: Kernel<S>,
    kc: usize,
    alpha: S,
    a_sl: &[S],
    b_sl: &[S],
    it: &TileSpan,
    jt: &TileSpan,
    ii: usize,
    jj: usize,
    c: &mut MatMut<'_, S>,
    scratch: &mut Vec<S>,
) {
    let exact = it.kernel == it.logical && jt.kernel == jt.logical;
    let ldc = c.ld();
    if exact {
        let ptr = c.tile_ptr(ii + it.offset, jj + jt.offset, it.kernel, jt.kernel);
        // SAFETY: `tile_ptr` just asserted that (ii+it.offset,
        // jj+jt.offset) heads a `kernel x kernel` window inside `c`,
        // whose elements `&mut c` owns exclusively; the kernel writes
        // exactly that footprint with stride `ldc = c.ld()`.
        unsafe { kernel.run_ptr(kc, alpha, a_sl, b_sl, ptr, ldc) };
    } else {
        // Padded tile (BLIS/BLASFEO): compute the full register tile
        // into scratch, then merge only the logical part into C.
        let need = it.kernel * jt.kernel;
        scratch.clear();
        scratch.resize(need, S::ZERO);
        kernel.run(kc, alpha, a_sl, b_sl, scratch, it.kernel);
        for j in 0..jt.logical {
            for i in 0..it.logical {
                let gi = ii + it.offset + i;
                let gj = jj + jt.offset + j;
                let v = c.at(gi, gj) + scratch[j * it.kernel + i];
                c.set(gi, gj, v);
            }
        }
    }
}

/// Convenience constructors matching the four libraries.
pub fn openblas_engine() -> GotoEngine {
    GotoEngine::with_profile(LibraryProfile::openblas())
}

/// BLIS-profile engine.
pub fn blis_engine() -> GotoEngine {
    GotoEngine::with_profile(LibraryProfile::blis())
}

/// Eigen-profile engine.
pub fn eigen_engine() -> GotoEngine {
    GotoEngine::with_profile(LibraryProfile::eigen())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;
    use crate::naive::gemm_naive;

    fn check(engine: &GotoEngine, m: usize, n: usize, k: usize, alpha: f32, beta: f32) {
        let a = Mat::<f32>::random(m, k, 11);
        let b = Mat::<f32>::random(k, n, 22);
        let mut c = Mat::<f32>::random(m, n, 33);
        let mut c_ref = c.clone();
        engine.gemm(alpha, a.as_ref(), b.as_ref(), beta, c.as_mut());
        gemm_naive(alpha, a.as_ref(), b.as_ref(), beta, c_ref.as_mut());
        let diff = c.max_abs_diff(&c_ref);
        assert!(
            diff < 1e-3,
            "{} {m}x{n}x{k} alpha={alpha} beta={beta}: diff {diff}",
            engine.profile.name
        );
    }

    #[test]
    fn openblas_profile_matches_naive_on_aligned_sizes() {
        let e = openblas_engine();
        check(&e, 16, 4, 8, 1.0, 0.0);
        check(&e, 64, 64, 64, 1.0, 1.0);
        check(&e, 32, 8, 16, 2.0, 0.5);
    }

    #[test]
    fn openblas_profile_handles_edges() {
        let e = openblas_engine();
        // The paper's §III-B example: M=75 forces 8+2+1 edge kernels.
        check(&e, 75, 60, 60, 1.0, 0.0);
        check(&e, 11, 3, 7, 1.0, 1.0);
        check(&e, 17, 5, 9, -1.0, 2.0);
        check(&e, 1, 1, 1, 3.0, 0.0);
    }

    #[test]
    fn blis_profile_pads_edges_correctly() {
        let e = blis_engine();
        check(&e, 75, 60, 60, 1.0, 0.0);
        check(&e, 7, 11, 5, 1.0, 0.5);
        check(&e, 8, 12, 16, 1.0, 0.0);
        check(&e, 9, 13, 17, 2.0, 1.0);
    }

    #[test]
    fn eigen_profile_is_correct() {
        let e = eigen_engine();
        check(&e, 12, 4, 8, 1.0, 0.0);
        check(&e, 50, 50, 50, 1.5, 0.25);
        check(&e, 13, 5, 3, 1.0, 0.0);
    }

    #[test]
    fn sizes_crossing_blocking_boundaries() {
        // Force multiple kc/mc/nc iterations with a tiny blocking.
        let mut e = openblas_engine();
        e.blocking = BlockingParams {
            kc: 8,
            mc: 32,
            nc: 12,
        };
        check(&e, 70, 30, 33, 1.0, 1.0);
        check(&e, 100, 25, 17, 0.5, -1.0);
    }

    #[test]
    fn degenerate_dimensions() {
        let e = blis_engine();
        let a = Mat::<f32>::zeros(4, 0);
        let b = Mat::<f32>::zeros(0, 4);
        let mut c = Mat::<f32>::from_fn(4, 4, |_, _| 2.0);
        e.gemm(1.0, a.as_ref(), b.as_ref(), 0.5, c.as_mut());
        assert_eq!(c[(3, 3)], 1.0);
    }

    #[test]
    fn f64_engine_works() {
        let e = blis_engine();
        let a = Mat::<f64>::random(20, 14, 5);
        let b = Mat::<f64>::random(14, 9, 6);
        let mut c = Mat::<f64>::zeros(20, 9);
        let mut c_ref = c.clone();
        e.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-10);
    }
}
