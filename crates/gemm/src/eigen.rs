//! The Eigen strategy.
//!
//! Eigen stores matrices row-major and blocks from the `M` dimension
//! first (§II-C). Its kernels are compiler-generated C++ (no assembly,
//! Table I: 12×4 tile, unroll 1): `B` scalars are broadcast with `dup`
//! instructions that burn FP-pipe slots, and every load pays its own
//! address arithmetic. Parallel execution splits the task matrix `C`
//! by columns (Eigen's column-block scheme) with no cooperative
//! packing: each thread packs the full lhs for itself (duplicated
//! work) plus its own rhs slice, so there are no barriers but small
//! `N` starves threads and the lhs packing is paid `threads` times.

use smm_kernels::registry::{tile_dimension, LibraryProfile};
use smm_kernels::trace_gen::KernelTraceParams;
use smm_kernels::Scalar;
use smm_simarch::phase::Phase;

use crate::engine::GotoEngine;
use crate::matrix::{MatMut, MatRef};
use crate::parallel::{gemm_parallel_2d, split_ranges};
use crate::sim::{GemmLayout, MacroOp, PackAPanelOp, PackBSliverOp, SimJob, ELEM};
use crate::strategy::Strategy;

/// The Eigen-style implementation.
#[derive(Debug, Clone)]
pub struct EigenStrategy {
    engine: GotoEngine,
}

impl EigenStrategy {
    /// Build with Phytium-derived blocking.
    pub fn new() -> Self {
        EigenStrategy {
            engine: GotoEngine::with_profile(LibraryProfile::eigen()),
        }
    }

    /// Access the underlying engine.
    pub fn engine(&self) -> &GotoEngine {
        &self.engine
    }
}

impl Default for EigenStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> Strategy<S> for EigenStrategy {
    fn name(&self) -> &'static str {
        "Eigen"
    }

    fn gemm(
        &self,
        alpha: S,
        a: MatRef<'_, S>,
        b: MatRef<'_, S>,
        beta: S,
        c: MatMut<'_, S>,
        threads: usize,
    ) {
        if threads <= 1 {
            self.engine.gemm(alpha, a, b, beta, c);
        } else {
            // Column split, matching Eigen's parallel scheme.
            gemm_parallel_2d(&self.engine, 1, threads, alpha, a, b, beta, c);
        }
    }

    fn sim(&self, m: usize, n: usize, k: usize, threads: usize) -> SimJob {
        build_sim(&self.engine, m, n, k, threads)
    }
}

fn build_sim(engine: &GotoEngine, m: usize, n: usize, k: usize, threads: usize) -> SimJob {
    assert!(m > 0 && n > 0 && k > 0, "empty GEMM");
    let threads = threads.max(1);
    let profile = &engine.profile;
    let bp = engine.blocking.clipped(m, n, k);
    let (mr, nr) = (profile.main.mr(), profile.main.nr());
    let mut lay = GemmLayout::for_threads(m, n, k, threads);
    // Row-major strides over the same allocations.
    let lda_rm = k as u64 * ELEM;
    let ldb_rm = n as u64 * ELEM;

    // Independent per-thread packed buffers: no sharing, no barriers.
    let apack: Vec<u64> = (0..threads)
        .map(|t| lay.alloc_local(((bp.mc + mr) * bp.kc) as u64 * ELEM, t))
        .collect();
    let bpack: Vec<u64> = (0..threads)
        .map(|t| lay.alloc_local(((n + nr) * bp.kc) as u64 * ELEM, t))
        .collect();

    let col_ranges = split_ranges(n, threads);
    let mut progs: Vec<Vec<MacroOp>> = vec![Vec::new(); threads];

    for (t, &(j0, nt)) in col_ranges.iter().enumerate() {
        if nt == 0 {
            continue;
        }
        let prog = &mut progs[t];
        // Eigen blocks from M first; every thread re-packs the full lhs.
        let mut ii = 0;
        while ii < m {
            let mc_cur = bp.mc.min(m - ii);
            let mut kk = 0;
            while kk < k {
                let kc_cur = bp.kc.min(k - kk);
                // Pack lhs panels: row-major A makes the per-column
                // gather strided.
                let m_tiles = tile_dimension(mc_cur, mr, profile.edge, &profile.m_steps);
                let mut a_offs = Vec::with_capacity(m_tiles.len());
                let mut aoff = 0u64;
                for it in &m_tiles {
                    a_offs.push(aoff);
                    aoff += (it.kernel * kc_cur) as u64 * ELEM;
                }
                for (ti, it) in m_tiles.iter().enumerate() {
                    prog.push(MacroOp::PackA(PackAPanelOp {
                        src: lay.a + (ii + it.offset) as u64 * lda_rm + kk as u64 * ELEM,
                        lda: lda_rm,
                        rows: it.logical,
                        kc: kc_cur,
                        pad_to: it.kernel,
                        dst: apack[t] + a_offs[ti],
                        phase: Phase::PackA,
                        src_row_major: true,
                    }));
                }
                // Pack this thread's rhs slice: row-major B makes the
                // gather contiguous (the cheap side).
                let n_tiles = tile_dimension(nt, nr, profile.edge, &profile.n_steps);
                let mut b_offs = Vec::with_capacity(n_tiles.len());
                let mut boff = 0u64;
                for jt in &n_tiles {
                    b_offs.push(boff);
                    boff += (jt.kernel * kc_cur) as u64 * ELEM;
                }
                for (s, jt) in n_tiles.iter().enumerate() {
                    prog.push(MacroOp::PackB(PackBSliverOp {
                        src: lay.b + kk as u64 * ldb_rm + (j0 + jt.offset) as u64 * ELEM,
                        ldb: ldb_rm,
                        kc: kc_cur,
                        cols: jt.logical,
                        pad_to: jt.kernel,
                        dst: bpack[t] + b_offs[s],
                        phase: Phase::PackB,
                        src_row_major: true,
                    }));
                }
                for (s, jt) in n_tiles.iter().enumerate() {
                    for (ti, it) in m_tiles.iter().enumerate() {
                        let is_main = it.kernel == mr && jt.kernel == nr;
                        let desc = if is_main {
                            profile.main
                        } else {
                            profile.edge_desc(it.kernel, jt.kernel)
                        };
                        prog.push(MacroOp::Kernel(KernelTraceParams {
                            desc,
                            kc: kc_cur,
                            a_base: apack[t] + a_offs[ti],
                            a_kstep: (it.kernel as u64) * ELEM,
                            b_base: bpack[t] + b_offs[s],
                            b_kstep: (jt.kernel as u64) * ELEM,
                            b_jstride: ELEM,
                            c_base: lay.c_addr(ii + it.offset, j0 + jt.offset),
                            c_col_stride: lay.ldc,
                            elem: ELEM,
                            phase: if is_main { Phase::Kernel } else { Phase::Edge },
                        }));
                    }
                }
                kk += kc_cur;
            }
            ii += mc_cur;
        }
    }

    SimJob {
        programs: progs,
        useful_flops: 2.0 * m as f64 * n as f64 * k as f64,
        label: format!("Eigen {m}x{n}x{k} t{threads}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;
    use crate::naive::gemm_naive;
    use smm_simarch::isa::Op;
    use smm_simarch::trace::collect_source;

    #[test]
    fn native_matches_naive() {
        let s = EigenStrategy::new();
        let a = Mat::<f32>::random(25, 14, 1);
        let b = Mat::<f32>::random(14, 22, 2);
        let mut c = Mat::<f32>::random(25, 22, 3);
        let mut c_ref = c.clone();
        Strategy::<f32>::gemm(&s, 1.0, a.as_ref(), b.as_ref(), 2.0, c.as_mut(), 1);
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 2.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn sim_runs_and_packs_both_operands() {
        let s = EigenStrategy::new();
        let report = Strategy::<f32>::sim(&s, 24, 16, 12, 1).run();
        let b = report.total_breakdown();
        assert!(b.get(Phase::PackA) > 0);
        assert!(b.get(Phase::PackB) > 0);
        assert!(b.get(Phase::Kernel) > 0);
    }

    #[test]
    fn sim_parallel_has_no_barriers() {
        let s = EigenStrategy::new();
        let job = Strategy::<f32>::sim(&s, 32, 32, 16, 4);
        for prog in &job.programs {
            assert!(!prog.iter().any(|op| matches!(op, MacroOp::Barrier { .. })));
        }
        let report = job.run();
        assert_eq!(report.total_breakdown().get(Phase::Sync), 0);
    }

    #[test]
    fn kernel_traces_contain_dup_broadcasts() {
        let s = EigenStrategy::new();
        let job = Strategy::<f32>::sim(&s, 12, 4, 8, 1);
        let mut dups = 0;
        for prog in job.programs {
            let insts = collect_source(crate::sim::ProgramSource::new(prog));
            dups += insts.iter().filter(|i| i.op == Op::VDup).count();
        }
        assert!(dups > 0, "Eigen kernels must broadcast B with dup");
    }

    #[test]
    fn sim_is_slower_than_blasfeo_for_smm() {
        // The headline Fig. 5 ordering: Eigen is the worst performer,
        // BLASFEO the best.
        let eigen = Strategy::<f32>::sim(&EigenStrategy::new(), 48, 48, 48, 1).run();
        let feo =
            Strategy::<f32>::sim(&crate::blasfeo::BlasfeoStrategy::new(), 48, 48, 48, 1).run();
        assert!(
            eigen.cycles > feo.cycles,
            "Eigen {} cycles vs BLASFEO {}",
            eigen.cycles,
            feo.cycles
        );
    }
}
