//! The OpenBLAS strategy.
//!
//! Goto six-loop blocking with a 16×4 assembly-style main kernel
//! (unroll 8), dedicated — but naively scheduled (Fig. 7) — edge
//! micro-kernels, full `Ã`/`B̃` packing, and two-dimensional
//! parallelization that splits the `ii` loop across *all* threads
//! (§III-D: with 64 threads each gets `mc/64` rows, which collapses
//! into edge cases whenever `M` is small).

use smm_kernels::registry::{tile_dimension, LibraryProfile, TileSpan};
use smm_kernels::trace_gen::KernelTraceParams;
use smm_kernels::Scalar;
use smm_simarch::phase::Phase;

use crate::engine::GotoEngine;
use crate::matrix::{MatMut, MatRef};
use crate::parallel::{gemm_parallel_2d, split_ranges};
use crate::sim::{GemmLayout, MacroOp, PackAPanelOp, PackBSliverOp, SimJob, ELEM};
use crate::strategy::Strategy;

/// The OpenBLAS-style implementation.
#[derive(Debug, Clone)]
pub struct OpenBlasStrategy {
    engine: GotoEngine,
}

impl OpenBlasStrategy {
    /// Build with Phytium-derived blocking.
    pub fn new() -> Self {
        OpenBlasStrategy {
            engine: GotoEngine::with_profile(LibraryProfile::openblas()),
        }
    }

    /// Access the underlying engine (tests, ablations).
    pub fn engine(&self) -> &GotoEngine {
        &self.engine
    }
}

impl Default for OpenBlasStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> Strategy<S> for OpenBlasStrategy {
    fn name(&self) -> &'static str {
        "OpenBLAS"
    }

    fn gemm(
        &self,
        alpha: S,
        a: MatRef<'_, S>,
        b: MatRef<'_, S>,
        beta: S,
        c: MatMut<'_, S>,
        threads: usize,
    ) {
        if threads <= 1 {
            self.engine.gemm(alpha, a, b, beta, c);
        } else {
            // 2-D grid over C; OpenBLAS favours splitting M.
            gemm_parallel_2d(&self.engine, threads, 1, alpha, a, b, beta, c);
        }
    }

    fn sim(&self, m: usize, n: usize, k: usize, threads: usize) -> SimJob {
        build_sim(&self.engine, m, n, k, threads)
    }
}

/// Kernel macro-op for a (possibly edge) tile.
#[allow(clippy::too_many_arguments)]
fn kernel_op(
    profile: &LibraryProfile,
    it: &TileSpan,
    jt: &TileSpan,
    kc: usize,
    a_base: u64,
    b_base: u64,
    c_base: u64,
    c_col_stride: u64,
) -> MacroOp {
    let main = profile.main;
    let is_main = it.kernel == main.mr() && jt.kernel == main.nr();
    let desc = if is_main {
        main
    } else {
        profile.edge_desc(it.kernel, jt.kernel)
    };
    MacroOp::Kernel(KernelTraceParams {
        desc,
        kc,
        a_base,
        a_kstep: (it.kernel as u64) * ELEM,
        b_base,
        b_kstep: (jt.kernel as u64) * ELEM,
        b_jstride: ELEM,
        c_base,
        c_col_stride,
        elem: ELEM,
        phase: if is_main { Phase::Kernel } else { Phase::Edge },
    })
}

fn build_sim(engine: &GotoEngine, m: usize, n: usize, k: usize, threads: usize) -> SimJob {
    assert!(m > 0 && n > 0 && k > 0, "empty GEMM");
    let threads = threads.max(1);
    let profile = &engine.profile;
    let bp = engine.blocking.clipped(m, n, k);
    let (mr, nr) = (profile.main.mr(), profile.main.nr());
    let mut lay = GemmLayout::for_threads(m, n, k, threads);

    // Shared B̃ on panel 0; per-thread Ã on the thread's panel.
    let bpack = lay.alloc_local(((bp.nc + nr) * bp.kc) as u64 * ELEM, 0);
    let apack: Vec<u64> = (0..threads)
        .map(|t| lay.alloc_local(((bp.mc + mr) * bp.kc) as u64 * ELEM, t))
        .collect();

    let row_ranges = split_ranges(m, threads);
    let mut progs: Vec<Vec<MacroOp>> = vec![Vec::new(); threads];
    let mut barrier_id = 0u32;
    let mut barrier = |progs: &mut Vec<Vec<MacroOp>>| {
        if threads > 1 {
            barrier_id += 1;
            for p in progs.iter_mut() {
                p.push(MacroOp::Barrier {
                    id: barrier_id,
                    participants: threads,
                });
            }
        }
    };

    let mut jj = 0;
    while jj < n {
        let nc_cur = bp.nc.min(n - jj);
        let n_tiles = tile_dimension(nc_cur, nr, profile.edge, &profile.n_steps);
        let mut kk = 0;
        while kk < k {
            let kc_cur = bp.kc.min(k - kk);
            // Sliver offsets in the shared B̃.
            let mut b_offs = Vec::with_capacity(n_tiles.len());
            let mut off = 0u64;
            for jt in &n_tiles {
                b_offs.push(off);
                off += (jt.kernel * kc_cur) as u64 * ELEM;
            }
            // Cooperative B packing: sliver s goes to thread s % threads.
            for (s, jt) in n_tiles.iter().enumerate() {
                progs[s % threads].push(MacroOp::PackB(PackBSliverOp {
                    src: lay.b_addr(kk, jj + jt.offset),
                    ldb: lay.ldb,
                    kc: kc_cur,
                    cols: jt.logical,
                    pad_to: jt.kernel,
                    dst: bpack + b_offs[s],
                    phase: Phase::PackB,
                    src_row_major: false,
                }));
            }
            barrier(&mut progs);

            for (t, &(i0, mt)) in row_ranges.iter().enumerate() {
                if mt == 0 {
                    continue;
                }
                let mut ii = 0;
                while ii < mt {
                    let mc_cur = bp.mc.min(mt - ii);
                    let m_tiles = tile_dimension(mc_cur, mr, profile.edge, &profile.m_steps);
                    let mut a_offs = Vec::with_capacity(m_tiles.len());
                    let mut aoff = 0u64;
                    for it in &m_tiles {
                        a_offs.push(aoff);
                        aoff += (it.kernel * kc_cur) as u64 * ELEM;
                    }
                    for (ti, it) in m_tiles.iter().enumerate() {
                        progs[t].push(MacroOp::PackA(PackAPanelOp {
                            src: lay.a_addr(i0 + ii + it.offset, kk),
                            lda: lay.lda,
                            rows: it.logical,
                            kc: kc_cur,
                            pad_to: it.kernel,
                            dst: apack[t] + a_offs[ti],
                            phase: Phase::PackA,
                            src_row_major: false,
                        }));
                    }
                    for (s, jt) in n_tiles.iter().enumerate() {
                        for (ti, it) in m_tiles.iter().enumerate() {
                            progs[t].push(kernel_op(
                                profile,
                                it,
                                jt,
                                kc_cur,
                                apack[t] + a_offs[ti],
                                bpack + b_offs[s],
                                lay.c_addr(i0 + ii + it.offset, jj + jt.offset),
                                lay.ldc,
                            ));
                        }
                    }
                    ii += mc_cur;
                }
            }
            barrier(&mut progs);
            kk += kc_cur;
        }
        jj += nc_cur;
    }

    SimJob {
        programs: progs,
        useful_flops: 2.0 * m as f64 * n as f64 * k as f64,
        label: format!("OpenBLAS {m}x{n}x{k} t{threads}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;
    use crate::naive::gemm_naive;
    use smm_simarch::phase::Phase;

    #[test]
    fn native_matches_naive() {
        let s = OpenBlasStrategy::new();
        let a = Mat::<f32>::random(33, 21, 1);
        let b = Mat::<f32>::random(21, 18, 2);
        let mut c = Mat::<f32>::random(33, 18, 3);
        let mut c_ref = c.clone();
        Strategy::<f32>::gemm(&s, 1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut(), 1);
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 1.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn native_parallel_matches_naive() {
        let s = OpenBlasStrategy::new();
        let a = Mat::<f32>::random(40, 16, 4);
        let b = Mat::<f32>::random(16, 24, 5);
        let mut c = Mat::<f32>::zeros(40, 24);
        let mut c_ref = c.clone();
        Strategy::<f32>::gemm(&s, 2.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut(), 4);
        gemm_naive(2.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn sim_program_covers_all_fmas() {
        let s = OpenBlasStrategy::new();
        let job = Strategy::<f32>::sim(&s, 32, 8, 16, 1);
        let report = job.run();
        // Loop FMAs: every (i,j,p) MAC vectorized by 4 plus C merges.
        let min_fmas = (32 / 4) * 8 * 16;
        assert!(report.total_fmas() >= min_fmas as u64);
        assert!(report.cycles > 0);
    }

    #[test]
    fn sim_single_thread_has_no_sync() {
        let s = OpenBlasStrategy::new();
        let report = Strategy::<f32>::sim(&s, 24, 12, 8, 1).run();
        assert_eq!(report.total_breakdown().get(Phase::Sync), 0);
        assert!(report.total_breakdown().get(Phase::PackA) > 0);
        assert!(report.total_breakdown().get(Phase::PackB) > 0);
    }

    #[test]
    fn sim_edge_sizes_use_edge_phase() {
        let s = OpenBlasStrategy::new();
        // M=75: 4 full 16-row panels + 8+2+1 edges (paper's example).
        let report = Strategy::<f32>::sim(&s, 75, 8, 16, 1).run();
        assert!(report.total_breakdown().get(Phase::Edge) > 0);
        // Aligned sizes have no edge work.
        let aligned = Strategy::<f32>::sim(&s, 64, 8, 16, 1).run();
        assert_eq!(aligned.total_breakdown().get(Phase::Edge), 0);
    }

    #[test]
    fn sim_multithread_synchronizes() {
        let s = OpenBlasStrategy::new();
        let report = Strategy::<f32>::sim(&s, 64, 32, 16, 4).run();
        assert_eq!(report.cores.len(), 4);
        assert!(report.total_breakdown().get(Phase::Sync) > 0);
    }

    #[test]
    fn small_m_with_many_threads_starves_cores() {
        let s = OpenBlasStrategy::new();
        // M=8 over 8 threads: one row each, all edge kernels.
        let report = Strategy::<f32>::sim(&s, 8, 48, 32, 8).run();
        let b = report.total_breakdown();
        assert!(b.get(Phase::Edge) > b.get(Phase::Kernel));
    }
}
