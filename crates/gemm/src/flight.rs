//! Flight recorder: lock-free per-thread ring buffers of fixed-size
//! span events.
//!
//! The tracing subsystem (`smm-core::trace`) needs somewhere to put
//! span begin/end events that (a) never blocks a pool worker, (b) uses
//! bounded memory no matter how long the process runs, and (c) can be
//! read while writers are live (the slow-request exemplar store scans
//! it on the dispatcher thread). This module is that substrate: a
//! fixed set of rings, each a power-of-two array of 64-byte seqlocked
//! slots, with threads stickily assigned to rings the same way
//! telemetry assigns histogram shards. Writers claim a slot with one
//! relaxed `fetch_add` and publish with one release store; when a ring
//! wraps, the oldest events are overwritten — a flight recorder, not a
//! log.
//!
//! Readers (`snapshot`/`drain`) validate each slot's sequence word
//! before and after copying the payload, so a slot being overwritten
//! mid-read is skipped rather than surfaced torn. The one caveat of
//! the claim-then-write protocol: if a writer stalls for a *full ring
//! wrap* while mid-write, two writers share a slot and the final
//! payload can mix words. The sequence recheck makes this window a
//! single potentially-garbled event (never a crash or a stuck reader),
//! and span assembly upstream drops events that do not pair.

use std::cell::Cell;

use smm_sync::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Number of rings. Threads hash onto rings, so this bounds writer
/// contention, not thread count.
#[cfg(not(smm_model_check))]
pub const RINGS: usize = 16;

/// Slots per ring (power of two). Total capacity is
/// `RINGS * RING_SLOTS` events ≈ 1 MiB resident.
#[cfg(not(smm_model_check))]
pub const RING_SLOTS: usize = 1024;

/// Model-check geometry: one ring forces every writer onto the same
/// seqlock slots so the checker exercises writer/writer and
/// writer/reader overlap within its op budget.
#[cfg(smm_model_check)]
pub const RINGS: usize = 1;

/// Model-check geometry: four slots keep wraparound reachable in a
/// handful of scheduled ops.
#[cfg(smm_model_check)]
pub const RING_SLOTS: usize = 4;

/// Whether an event opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened at `ts_ns`.
    Begin,
    /// Span closed at `ts_ns`.
    End,
}

/// One fixed-size span event as written by a traced thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Begin or end.
    pub kind: EventKind,
    /// Trace (request) this span belongs to.
    pub trace: u64,
    /// Process-unique span id.
    pub span: u64,
    /// Parent span id (0 = root). Meaningful on `Begin` events.
    pub parent: u64,
    /// Nanoseconds since the owning tracer's epoch.
    pub ts_ns: u64,
    /// Span name tag (interpreted by `smm-core::trace::SpanName`).
    pub name: u8,
    /// Emitting thread's flight-recorder tid (pool workers 1..=N).
    pub tid: u32,
    /// One free payload word (shape code, batch size, …).
    pub arg: u64,
}

/// One seqlocked event slot. Exactly one cache line: the sequence word
/// plus the six payload words.
// All fields relaxed except the seqlock protocol on `seq`: writers
// store `2c+1` (odd = write in progress) relaxed, payload relaxed,
// then `2c+2` with Release; readers load `seq` with Acquire, copy the
// payload relaxed, and re-validate `seq` behind an Acquire fence, so
// an accepted slot's payload is the one published by that sequence.
#[repr(align(64))]
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    ts_ns: AtomicU64,
    meta: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            span: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            ts_ns: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

fn pack_meta(kind: EventKind, name: u8, tid: u32) -> u64 {
    let k = match kind {
        EventKind::Begin => 0u64,
        EventKind::End => 1u64,
    };
    (k << 48) | ((name as u64) << 32) | tid as u64
}

fn unpack_meta(meta: u64) -> (EventKind, u8, u32) {
    let kind = if (meta >> 48) & 1 == 0 {
        EventKind::Begin
    } else {
        EventKind::End
    };
    (kind, (meta >> 32) as u8, meta as u32)
}

/// One ring: a claim counter plus its slot array, padded onto its own
/// cache lines so rings do not false-share.
// `head` is a relaxed monotonic claim counter — only uniqueness of the
// claimed index matters, publication ordering is carried by each
// slot's seqlock word.
#[repr(align(128))]
struct Ring {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new() -> Self {
        Ring {
            head: AtomicU64::new(0),
            slots: (0..RING_SLOTS).map(|_| Slot::empty()).collect(),
        }
    }
}

/// Sticky ring assignment: each thread takes the next ring index once
/// and keeps it, like telemetry's histogram-shard slots.
// Relaxed monotonic counter; only per-thread uniqueness-modulo-RINGS
// matters.
static NEXT_RING: AtomicUsize = AtomicUsize::new(0);

/// Flight-recorder thread ids: pool workers claim 1..=N via
/// [`set_thread_tid`]; any other thread lazily takes `64 + n`.
// Relaxed monotonic counter; ids only label trace events.
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static RING_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
    static THREAD_TID: Cell<u32> = const { Cell::new(0) };
}

fn thread_ring_index() -> usize {
    RING_INDEX.with(|c| {
        let mut idx = c.get();
        if idx == usize::MAX {
            idx = NEXT_RING.fetch_add(1, Ordering::Relaxed);
            c.set(idx);
        }
        idx & (RINGS - 1)
    })
}

/// The calling thread's flight-recorder tid (assigned on first use;
/// pool workers are pre-assigned 1..=N by the pool).
pub fn thread_tid() -> u32 {
    THREAD_TID.with(|c| {
        let mut tid = c.get();
        if tid == 0 {
            tid = 64 + NEXT_TID.fetch_add(1, Ordering::Relaxed);
            c.set(tid);
        }
        tid
    })
}

/// Pin the calling thread's flight-recorder tid (the worker pool tags
/// its threads `1..=workers` so traces name pool workers stably).
pub fn set_thread_tid(tid: u32) {
    THREAD_TID.with(|c| c.set(tid));
}

/// A bounded, lock-free, overwrite-oldest store of [`SpanEvent`]s.
pub struct FlightRecorder {
    rings: Vec<Ring>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A recorder with the fixed `RINGS × RING_SLOTS` capacity.
    pub fn new() -> Self {
        FlightRecorder {
            rings: (0..RINGS).map(|_| Ring::new()).collect(),
        }
    }

    /// Total event capacity before overwrite.
    pub fn capacity(&self) -> usize {
        RINGS * RING_SLOTS
    }

    /// Append one event to the calling thread's ring. Lock-free: one
    /// relaxed claim, six relaxed payload stores, one release publish.
    pub fn emit(&self, e: &SpanEvent) {
        let ring = &self.rings[thread_ring_index()];
        let claim = ring.head.fetch_add(1, Ordering::Relaxed);
        let slot = &ring.slots[(claim as usize) & (RING_SLOTS - 1)];
        // Seqlock write (ordering discipline on the Slot declaration):
        // odd marks the slot busy so concurrent readers skip it.
        slot.seq.store(claim * 2 + 1, Ordering::Relaxed);
        slot.trace.store(e.trace, Ordering::Relaxed);
        slot.span.store(e.span, Ordering::Relaxed);
        slot.parent.store(e.parent, Ordering::Relaxed);
        slot.ts_ns.store(e.ts_ns, Ordering::Relaxed);
        slot.meta
            .store(pack_meta(e.kind, e.name, e.tid), Ordering::Relaxed);
        slot.arg.store(e.arg, Ordering::Relaxed);
        slot.seq.store(claim * 2 + 2, Ordering::Release);
    }

    fn read_slot(slot: &Slot) -> Option<SpanEvent> {
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 == 1 {
            return None; // never written, or write in progress
        }
        let trace = slot.trace.load(Ordering::Relaxed);
        let span = slot.span.load(Ordering::Relaxed);
        let parent = slot.parent.load(Ordering::Relaxed);
        let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
        let meta = slot.meta.load(Ordering::Relaxed);
        let arg = slot.arg.load(Ordering::Relaxed);
        // Order the payload loads above before the validating re-read,
        // then reject the copy if a writer touched the slot meanwhile.
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != s1 {
            return None;
        }
        let (kind, name, tid) = unpack_meta(meta);
        Some(SpanEvent {
            kind,
            trace,
            span,
            parent,
            ts_ns,
            name,
            tid,
            arg,
        })
    }

    /// Copy out every currently-readable event without consuming it
    /// (the exemplar store scans this way). Order is unspecified; pair
    /// and sort downstream.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for ring in &self.rings {
            for slot in ring.slots.iter() {
                if let Some(e) = Self::read_slot(slot) {
                    out.push(e);
                }
            }
        }
        out
    }

    /// Copy out every currently-readable event and mark the slots
    /// empty. Events written concurrently with the drain may land in
    /// either the returned batch or the next one.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for ring in &self.rings {
            for slot in ring.slots.iter() {
                if let Some(e) = Self::read_slot(slot) {
                    out.push(e);
                    slot.seq.store(0, Ordering::Release);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(span: u64, ts: u64, kind: EventKind) -> SpanEvent {
        SpanEvent {
            kind,
            trace: 7,
            span,
            parent: 0,
            ts_ns: ts,
            name: 3,
            tid: thread_tid(),
            arg: span * 10,
        }
    }

    #[test]
    fn roundtrip_and_drain_clears() {
        let fr = FlightRecorder::new();
        fr.emit(&ev(1, 100, EventKind::Begin));
        fr.emit(&ev(1, 200, EventKind::End));
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(fr.snapshot().len(), 2, "snapshot is non-destructive");
        let drained = fr.drain();
        assert_eq!(drained.len(), 2);
        let begin = drained.iter().find(|e| e.kind == EventKind::Begin).unwrap();
        assert_eq!(
            (begin.trace, begin.span, begin.ts_ns, begin.name, begin.arg),
            (7, 1, 100, 3, 10)
        );
        assert!(begin.tid >= 64, "non-pool thread tid");
        assert!(fr.drain().is_empty());
    }

    #[test]
    fn wraparound_keeps_newest() {
        let fr = FlightRecorder::new();
        // Single thread → single ring; overflow it 3x.
        let total = RING_SLOTS as u64 * 3;
        for i in 0..total {
            fr.emit(&ev(i, i, EventKind::Begin));
        }
        let snap = fr.snapshot();
        assert_eq!(snap.len(), RING_SLOTS, "ring holds exactly one lap");
        let min_span = snap.iter().map(|e| e.span).min().unwrap();
        assert_eq!(min_span, total - RING_SLOTS as u64, "oldest overwritten");
    }

    #[test]
    fn meta_packing_roundtrips() {
        for (kind, name, tid) in [
            (EventKind::Begin, 0u8, 1u32),
            (EventKind::End, 255, u32::MAX),
            (EventKind::Begin, 17, 64),
        ] {
            assert_eq!(unpack_meta(pack_meta(kind, name, tid)), (kind, name, tid));
        }
    }
}
