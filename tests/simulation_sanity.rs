//! Simulation-level invariants: the qualitative findings of the paper
//! must hold on the simulated Phytium 2000+ for small problem sizes
//! (kept small so these run quickly in debug builds).

use smm_gemm::{
    all_strategies, BlasfeoStrategy, BlisStrategy, EigenStrategy, OpenBlasStrategy, Strategy,
};
use smm_simarch::phase::Phase;

fn eff1(s: &dyn Strategy<f32>, m: usize, n: usize, k: usize) -> f64 {
    let flops = 2.0 * (m * n * k) as f64;
    let r = s.sim(m, n, k, 1).run();
    r.gflops(flops, 2.2e9) / 17.6
}

/// §III-A headline: BLASFEO (no packing) beats every packing library
/// on small squares.
#[test]
fn blasfeo_wins_single_threaded_smm() {
    let feo = BlasfeoStrategy::new();
    let others: [&dyn Strategy<f32>; 3] = [
        &OpenBlasStrategy::new(),
        &BlisStrategy::new(),
        &EigenStrategy::new(),
    ];
    for &size in &[24usize, 48] {
        let f = eff1(&feo, size, size, size);
        for o in others {
            let e = eff1(o, size, size, size);
            assert!(f > e, "size {size}: BLASFEO {f:.3} vs {} {e:.3}", o.name());
        }
    }
}

/// §III-A: OpenBLAS packing share decreases as M and N grow, and is
/// much smaller when only K is small.
#[test]
fn packing_share_follows_p2c() {
    let ob = OpenBlasStrategy::new();
    let share = |m: usize, n: usize, k: usize| {
        let r = Strategy::<f32>::sim(&ob, m, n, k, 1).run();
        let b = r.total_breakdown();
        b.fraction(Phase::PackA) + b.fraction(Phase::PackB)
    };
    let small_m = share(4, 96, 96);
    let large_m = share(96, 96, 96);
    assert!(small_m > large_m, "small M {small_m} vs large {large_m}");
    let small_k = share(96, 96, 4);
    assert!(
        small_m > 2.0 * small_k,
        "small M {small_m} should dwarf small K {small_k}"
    );
}

/// §III-B: efficiency at a kernel-aligned size beats its unaligned
/// neighbour (the paper's M=N=K=80 vs 75 example).
#[test]
fn aligned_sizes_beat_unaligned_neighbours() {
    let ob = OpenBlasStrategy::new();
    let aligned = eff1(&ob, 80, 80, 80);
    let unaligned = eff1(&ob, 75, 75, 75);
    assert!(
        aligned > unaligned,
        "80^3 {aligned:.3} should beat 75^3 {unaligned:.3}"
    );
}

/// Eigen is the weakest single-threaded library at moderate sizes.
#[test]
fn eigen_trails_at_moderate_sizes() {
    let eigen = eff1(&EigenStrategy::new(), 96, 96, 96);
    for s in [
        &OpenBlasStrategy::new() as &dyn Strategy<f32>,
        &BlisStrategy::new(),
    ] {
        let e = eff1(s, 96, 96, 96);
        assert!(e > eigen, "{} {e:.3} vs Eigen {eigen:.3}", s.name());
    }
}

/// §III-D: BLIS beats OpenBLAS with many threads on small-M problems,
/// because OpenBLAS splits M across all threads.
#[test]
fn blis_wins_multithreaded_small_m() {
    let (m, n, k, t) = (32usize, 256usize, 256usize, 16usize);
    let flops = 2.0 * (m * n * k) as f64;
    let blis = Strategy::<f32>::sim(&BlisStrategy::new(), m, n, k, t).run();
    let ob = Strategy::<f32>::sim(&OpenBlasStrategy::new(), m, n, k, t).run();
    let be = blis.gflops(flops, 2.2e9);
    let oe = ob.gflops(flops, 2.2e9);
    assert!(be > oe, "BLIS {be:.1} vs OpenBLAS {oe:.1} Gflops");
}

/// More cores must reduce makespan on a parallel-friendly problem.
#[test]
fn multithreading_scales_makespan() {
    let blis = BlisStrategy::new();
    let t1 = Strategy::<f32>::sim(&blis, 128, 128, 64, 1).run().cycles;
    let t8 = Strategy::<f32>::sim(&blis, 128, 128, 64, 8).run().cycles;
    assert!(
        (t8 as f64) < 0.5 * t1 as f64,
        "8 threads {t8} cycles vs 1 thread {t1}"
    );
}

/// Simulated FMA counts are consistent with the arithmetic the shape
/// requires (at least M*N*K/4 vector FMAs, plus C-merge overhead).
#[test]
fn fma_accounting_is_conservative() {
    for s in all_strategies::<f32>() {
        let r = s.sim(32, 24, 16, 1).run();
        let min_fmas = (32 / 4) * 24 * 16;
        assert!(
            r.total_fmas() >= min_fmas as u64,
            "{}: {} FMAs < {min_fmas}",
            s.name(),
            r.total_fmas()
        );
    }
}

/// Barrier accounting: multi-threaded OpenBLAS synchronizes, BLASFEO
/// never packs, Eigen never syncs.
#[test]
fn phase_signatures_per_library() {
    let ob = Strategy::<f32>::sim(&OpenBlasStrategy::new(), 48, 48, 32, 4).run();
    assert!(ob.total_breakdown().get(Phase::Sync) > 0);
    let feo = Strategy::<f32>::sim(&BlasfeoStrategy::new(), 48, 48, 32, 1).run();
    assert_eq!(feo.total_breakdown().get(Phase::PackA), 0);
    assert_eq!(feo.total_breakdown().get(Phase::PackB), 0);
    let eig = Strategy::<f32>::sim(&EigenStrategy::new(), 48, 48, 32, 4).run();
    assert_eq!(eig.total_breakdown().get(Phase::Sync), 0);
}

/// The §IV reference implementation beats the best library on the
/// packing-hostile small-M shapes it was designed for.
#[test]
fn reference_impl_wins_on_small_m() {
    let plan = smm_core::SmmPlan::build(6, 96, 96, &smm_core::PlanConfig::default());
    let ours = smm_core::build_sim(&plan).run().cycles;
    for s in all_strategies::<f32>() {
        if s.name() == "BLASFEO" {
            // BLASFEO assumes panel-major inputs; it is the only rival
            // with zero packing and may tie or win.
            continue;
        }
        let theirs = s.sim(6, 96, 96, 1).run().cycles;
        assert!(
            ours < theirs,
            "SMM-Ref {ours} cycles vs {} {theirs}",
            s.name()
        );
    }
}
