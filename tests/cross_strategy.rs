//! Property-based cross-strategy tests: for arbitrary small shapes and
//! scalars, every implementation must agree with the naive oracle.

use proptest::prelude::*;
use smm_core::{PlanConfig, Smm, SmmPlan};
use smm_gemm::matrix::Mat;
use smm_gemm::{all_strategies, gemm_naive};

fn tolerance(k: usize) -> f64 {
    // Accumulation-order differences grow with K; inputs are bounded
    // by ~1.2 in magnitude.
    1e-4 * (k as f64 + 10.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four library strategies match naive on arbitrary shapes.
    #[test]
    fn strategies_match_naive(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in 0u64..1000,
    ) {
        let a = Mat::<f32>::random(m, k, seed);
        let b = Mat::<f32>::random(k, n, seed + 1);
        let c0 = Mat::<f32>::random(m, n, seed + 2);
        let mut c_ref = c0.clone();
        gemm_naive(alpha, a.as_ref(), b.as_ref(), beta, c_ref.as_mut());
        for s in all_strategies::<f32>() {
            let mut c = c0.clone();
            s.gemm(alpha, a.as_ref(), b.as_ref(), beta, c.as_mut(), 1);
            let d = c.max_abs_diff(&c_ref);
            prop_assert!(d < tolerance(k), "{} {m}x{n}x{k}: diff {d}", s.name());
        }
    }

    /// The reference implementation matches naive for every packing
    /// configuration.
    #[test]
    fn reference_matches_naive_all_configs(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        pack_a in proptest::bool::ANY,
        pack_b in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let cfg = PlanConfig {
            pack_a: Some(pack_a),
            pack_b: Some(pack_b),
            ..Default::default()
        };
        let plan = SmmPlan::build(m, n, k, &cfg);
        let a = Mat::<f32>::random(m, k, seed);
        let b = Mat::<f32>::random(k, n, seed + 1);
        let mut c = Mat::<f32>::random(m, n, seed + 2);
        let mut c_ref = c.clone();
        smm_core::execute(&plan, 1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 1.0, c_ref.as_mut());
        let d = c.max_abs_diff(&c_ref);
        prop_assert!(d < tolerance(k), "{m}x{n}x{k} pa={pack_a} pb={pack_b}: diff {d}");
    }

    /// Threaded execution is equivalent to single-threaded.
    #[test]
    fn threads_do_not_change_results(
        m in 1usize..64,
        n in 1usize..64,
        k in 1usize..32,
        threads in 2usize..9,
        seed in 0u64..1000,
    ) {
        let a = Mat::<f32>::random(m, k, seed);
        let b = Mat::<f32>::random(k, n, seed + 1);
        let single = Smm::<f32>::new();
        let multi = Smm::<f32>::with_threads(threads);
        let mut c1 = Mat::<f32>::zeros(m, n);
        let mut c2 = Mat::<f32>::zeros(m, n);
        single.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c1.as_mut());
        multi.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c2.as_mut());
        let d = c1.max_abs_diff(&c2);
        prop_assert!(d < tolerance(k), "{m}x{n}x{k} t{threads}: diff {d}");
    }

    /// Plans are internally consistent for arbitrary shapes.
    #[test]
    fn plans_are_well_formed(
        m in 1usize..300,
        n in 1usize..300,
        k in 1usize..300,
        threads in 1usize..65,
    ) {
        let cfg = PlanConfig { max_threads: threads, ..Default::default() };
        let p = SmmPlan::build(m, n, k, &cfg);
        // Tiles cover the dimensions exactly.
        prop_assert_eq!(p.m_tiles.iter().map(|t| t.logical).sum::<usize>(), m);
        prop_assert_eq!(p.n_tiles.iter().map(|t| t.logical).sum::<usize>(), n);
        // Exact tiling: no padding anywhere.
        prop_assert!(p.m_tiles.iter().all(|t| t.kernel == t.logical));
        // The kernel satisfies Eq. 4.
        prop_assert!(p.kernel.satisfies_register_constraint(4, 32, 2));
        // Thread budget respected and kc within bounds.
        prop_assert!(p.threads() <= threads);
        prop_assert!(p.kc >= 1 && p.kc <= k.max(32));
    }
}
