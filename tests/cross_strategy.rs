//! Cross-strategy property tests, driven by a deterministic xorshift
//! sweep: for arbitrary small shapes and scalars, every implementation
//! must agree with the naive oracle.

use smm_core::{PlanConfig, Smm, SmmPlan};
use smm_gemm::matrix::Mat;
use smm_gemm::{all_strategies, gemm_naive};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn scalar(&mut self) -> f32 {
        (self.range(0, 17) as f32 - 8.0) * 0.25
    }
}

fn tolerance(k: usize) -> f64 {
    // Accumulation-order differences grow with K; inputs are bounded
    // by ~1.2 in magnitude.
    1e-4 * (k as f64 + 10.0)
}

/// All four library strategies match naive on arbitrary shapes.
#[test]
fn strategies_match_naive() {
    let mut rng = Rng::new(41);
    for _ in 0..48 {
        let m = rng.range(1, 48);
        let n = rng.range(1, 48);
        let k = rng.range(1, 48);
        let alpha = rng.scalar();
        let beta = rng.scalar();
        let seed = rng.range(0, 1000) as u64;
        let a = Mat::<f32>::random(m, k, seed);
        let b = Mat::<f32>::random(k, n, seed + 1);
        let c0 = Mat::<f32>::random(m, n, seed + 2);
        let mut c_ref = c0.clone();
        gemm_naive(alpha, a.as_ref(), b.as_ref(), beta, c_ref.as_mut());
        for s in all_strategies::<f32>() {
            let mut c = c0.clone();
            s.gemm(alpha, a.as_ref(), b.as_ref(), beta, c.as_mut(), 1);
            let d = c.max_abs_diff(&c_ref);
            assert!(d < tolerance(k), "{} {m}x{n}x{k}: diff {d}", s.name());
        }
    }
}

/// The reference implementation matches naive for every packing
/// configuration.
#[test]
fn reference_matches_naive_all_configs() {
    let mut rng = Rng::new(42);
    for _ in 0..48 {
        let m = rng.range(1, 40);
        let n = rng.range(1, 40);
        let k = rng.range(1, 40);
        let pack_a = rng.range(0, 2) == 1;
        let pack_b = rng.range(0, 2) == 1;
        let seed = rng.range(0, 1000) as u64;
        let cfg = PlanConfig {
            pack_a: Some(pack_a),
            pack_b: Some(pack_b),
            ..Default::default()
        };
        let plan = SmmPlan::build(m, n, k, &cfg);
        let a = Mat::<f32>::random(m, k, seed);
        let b = Mat::<f32>::random(k, n, seed + 1);
        let mut c = Mat::<f32>::random(m, n, seed + 2);
        let mut c_ref = c.clone();
        smm_core::execute(&plan, 1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 1.0, c_ref.as_mut());
        let d = c.max_abs_diff(&c_ref);
        assert!(
            d < tolerance(k),
            "{m}x{n}x{k} pa={pack_a} pb={pack_b}: diff {d}"
        );
    }
}

/// Threaded execution is equivalent to single-threaded.
#[test]
fn threads_do_not_change_results() {
    let mut rng = Rng::new(43);
    for _ in 0..48 {
        let m = rng.range(1, 64);
        let n = rng.range(1, 64);
        let k = rng.range(1, 32);
        let threads = rng.range(2, 9);
        let seed = rng.range(0, 1000) as u64;
        let a = Mat::<f32>::random(m, k, seed);
        let b = Mat::<f32>::random(k, n, seed + 1);
        let single = Smm::<f32>::new();
        let multi = Smm::<f32>::with_threads(threads);
        let mut c1 = Mat::<f32>::zeros(m, n);
        let mut c2 = Mat::<f32>::zeros(m, n);
        single.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c1.as_mut());
        multi.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c2.as_mut());
        let d = c1.max_abs_diff(&c2);
        assert!(d < tolerance(k), "{m}x{n}x{k} t{threads}: diff {d}");
    }
}

/// Plans are internally consistent for arbitrary shapes.
#[test]
fn plans_are_well_formed() {
    let mut rng = Rng::new(44);
    for _ in 0..48 {
        let m = rng.range(1, 300);
        let n = rng.range(1, 300);
        let k = rng.range(1, 300);
        let threads = rng.range(1, 65);
        let cfg = PlanConfig {
            max_threads: threads,
            ..Default::default()
        };
        let p = SmmPlan::build(m, n, k, &cfg);
        // Tiles cover the dimensions exactly.
        assert_eq!(p.m_tiles.iter().map(|t| t.logical).sum::<usize>(), m);
        assert_eq!(p.n_tiles.iter().map(|t| t.logical).sum::<usize>(), n);
        // Exact tiling: no padding anywhere.
        assert!(p.m_tiles.iter().all(|t| t.kernel == t.logical));
        // The kernel satisfies Eq. 4.
        assert!(p.kernel.satisfies_register_constraint(4, 32, 2));
        // Thread budget respected and kc within bounds.
        assert!(p.threads() <= threads);
        assert!(p.kc >= 1 && p.kc <= k.max(32));
    }
}
