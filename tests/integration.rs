//! End-to-end integration tests: the reference implementation and all
//! four library strategies against the naive oracle, across the SMM
//! shape space of the paper's evaluation.

use smm_core::{PlanConfig, Smm, SmmPlan};
use smm_gemm::matrix::Mat;
use smm_gemm::{all_strategies, gemm_naive};

fn oracle(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    beta: f32,
    seed: u64,
) -> (Mat<f32>, Mat<f32>, Mat<f32>, Mat<f32>) {
    let a = Mat::<f32>::random(m, k, seed);
    let b = Mat::<f32>::random(k, n, seed + 1);
    let c0 = Mat::<f32>::random(m, n, seed + 2);
    let mut c_ref = c0.clone();
    gemm_naive(alpha, a.as_ref(), b.as_ref(), beta, c_ref.as_mut());
    (a, b, c0, c_ref)
}

/// Shapes from the paper's evaluation: squares of Fig. 5(a), the
/// irregular small-dimension shapes of Fig. 5(b-d) and Fig. 10, and
/// the §III-B edge example.
fn paper_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (5, 5, 5),
        (20, 20, 20),
        (75, 75, 75),
        (80, 80, 80),
        (200, 200, 200),
        (2, 192, 192),
        (40, 192, 192),
        (192, 2, 192),
        (192, 192, 2),
        (75, 60, 60),
        (64, 256, 256),
        (11, 4, 100),
        (1, 1, 1),
    ]
}

#[test]
fn every_strategy_matches_naive_on_paper_shapes() {
    for (m, n, k) in paper_shapes() {
        let (a, b, c0, c_ref) = oracle(m, n, k, 1.0, 1.0, 42);
        for s in all_strategies::<f32>() {
            let mut c = c0.clone();
            s.gemm(1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut(), 1);
            let d = c.max_abs_diff(&c_ref);
            assert!(d < 2e-2, "{} {m}x{n}x{k}: diff {d}", s.name());
        }
    }
}

#[test]
fn reference_impl_matches_naive_on_paper_shapes() {
    let smm = Smm::<f32>::new();
    for (m, n, k) in paper_shapes() {
        let (a, b, c0, _) = oracle(m, n, k, 2.0, 0.5, 17);
        let mut c = c0.clone();
        let mut c_ref = c0.clone();
        gemm_naive(2.0, a.as_ref(), b.as_ref(), 0.5, c_ref.as_mut());
        smm.gemm(2.0, a.as_ref(), b.as_ref(), 0.5, c.as_mut());
        let d = c.max_abs_diff(&c_ref);
        assert!(d < 2e-2, "SMM-Ref {m}x{n}x{k}: diff {d}");
    }
}

#[test]
fn multithreaded_strategies_match_naive() {
    for threads in [2, 4, 8] {
        for (m, n, k) in [(64, 96, 32), (16, 200, 64), (100, 10, 50)] {
            let (a, b, c0, c_ref) = oracle(m, n, k, 1.0, 1.0, 7);
            for s in all_strategies::<f32>() {
                if !s.supports_threads() {
                    continue;
                }
                let mut c = c0.clone();
                s.gemm(1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut(), threads);
                let d = c.max_abs_diff(&c_ref);
                assert!(d < 2e-2, "{} t{threads} {m}x{n}x{k}: diff {d}", s.name());
            }
            let smm = Smm::<f32>::with_threads(threads);
            let mut c = c0.clone();
            smm.gemm(1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut());
            assert!(
                c.max_abs_diff(&c_ref) < 2e-2,
                "SMM-Ref t{threads} {m}x{n}x{k}"
            );
        }
    }
}

#[test]
fn f64_precision_agrees_tightly() {
    let smm = Smm::<f64>::new();
    for (m, n, k) in [(33, 27, 19), (8, 8, 8), (75, 60, 60)] {
        let a = Mat::<f64>::random(m, k, 3);
        let b = Mat::<f64>::random(k, n, 4);
        let mut c = Mat::<f64>::zeros(m, n);
        let mut c_ref = Mat::<f64>::zeros(m, n);
        smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-9, "{m}x{n}x{k}");
    }
}

#[test]
fn plan_adaptivity_follows_the_p2c_model() {
    // Small M: packing cannot amortize -> packing-optional path.
    for (m, n) in [(2usize, 192usize), (8, 64), (4, 4)] {
        let p = SmmPlan::build(m, n, 64, &PlanConfig::default());
        assert!(!p.pack_b, "M={m}: B packing cannot amortize");
    }
    // Large M: B slivers are reused by many panels -> pack.
    let p = SmmPlan::build(192, 192, 64, &PlanConfig::default());
    assert!(p.pack_b);
    // P2C ordering matches the plan decisions.
    let small = SmmPlan::build(4, 4, 64, &PlanConfig::default());
    let large = SmmPlan::build(192, 192, 64, &PlanConfig::default());
    assert!(small.p2c > large.p2c);
}

#[test]
fn plan_grid_never_splits_small_dimensions() {
    let cfg = PlanConfig {
        max_threads: 64,
        ..Default::default()
    };
    let p = SmmPlan::build(16, 2048, 128, &cfg);
    assert!(p.grid.m_ways() <= 2, "{:?}", p.grid);
    let p2 = SmmPlan::build(2048, 16, 128, &cfg);
    assert!(p2.grid.n_ways() <= 2, "{:?}", p2.grid);
}

#[test]
fn strategies_agree_with_each_other() {
    let (m, n, k) = (53, 41, 29);
    let a = Mat::<f32>::random(m, k, 100);
    let b = Mat::<f32>::random(k, n, 101);
    let mut results = Vec::new();
    for s in all_strategies::<f32>() {
        let mut c = Mat::<f32>::zeros(m, n);
        s.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut(), 1);
        results.push((s.name(), c));
    }
    for w in results.windows(2) {
        let d = w[0].1.max_abs_diff(&w[1].1);
        assert!(d < 2e-2, "{} vs {}: diff {d}", w[0].0, w[1].0);
    }
}

#[test]
fn beta_zero_with_alpha_variants() {
    let (m, n, k) = (17, 13, 9);
    let a = Mat::<f32>::random(m, k, 1);
    let b = Mat::<f32>::random(k, n, 2);
    let smm = Smm::<f32>::new();
    for alpha in [0.0f32, 1.0, -2.5] {
        let mut expected = Mat::<f32>::from_fn(m, n, |_, _| 3.0);
        gemm_naive(alpha, a.as_ref(), b.as_ref(), 0.0, expected.as_mut());
        let mut c = Mat::<f32>::from_fn(m, n, |_, _| 3.0);
        smm.gemm(alpha, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        assert!(c.max_abs_diff(&expected) < 1e-2, "alpha={alpha}");
    }
}
