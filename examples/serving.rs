//! Serving quickstart: start an in-process GEMM server, hammer it with
//! mixed shapes from several client threads, and print what the
//! shape-coalescing batcher did about it.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::sync::Arc;
use std::time::Duration;

use smm_core::Smm;
use smm_serve::{GemmRequest, Server};

fn main() {
    // A telemetry-enabled runtime so the serve-side phase spans
    // (enqueue-wait / coalesce / dispatch / reply) show up in the
    // report at the end.
    let smm = Arc::new(Smm::<f32>::builder().threads(4).telemetry(true).build());
    let server = Server::<f32>::builder()
        .smm(Arc::clone(&smm))
        .queue_capacity(256)
        .coalesce_window(Duration::from_micros(200))
        .max_batch(32)
        .build();
    let client = server.client();

    // Six client threads, three shapes: the paper's small-GEMM regime,
    // where batching across requests is the only parallelism that pays.
    let shapes = [(8, 8, 8), (16, 16, 16), (4, 32, 4)];
    std::thread::scope(|s| {
        for t in 0..6usize {
            let client = client.clone();
            s.spawn(move || {
                for i in 0..200usize {
                    let (m, n, k) = shapes[(t + i) % shapes.len()];
                    let req = GemmRequest::new(m, n, k, vec![1.0; m * k], vec![1.0; k * n])
                        .with_deadline(Duration::from_millis(250));
                    match client.submit(req) {
                        Ok(ticket) => match ticket.wait() {
                            Ok(c) => assert_eq!(c[0], k as f32),
                            Err(rej) => println!("request rejected late: {rej}"),
                        },
                        Err(rej) => println!("request rejected at submit: {rej}"),
                    }
                }
            });
        }
    });

    let stats = server.shutdown();
    println!("{stats}");
    println!();
    println!("{}", smm.stats_report());
}
