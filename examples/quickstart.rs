//! Quickstart: multiply two small matrices with the reference SMM
//! implementation and verify the result against the naive oracle.
//!
//! Run with: `cargo run --release --example quickstart`

use smm_core::{PlanConfig, Smm, SmmPlan};
use smm_gemm::gemm_naive;
use smm_gemm::matrix::Mat;

fn main() {
    // An irregular small shape: tall-and-skinny C.
    let (m, n, k) = (75, 12, 64);
    let a = Mat::<f32>::random(m, k, 1);
    let b = Mat::<f32>::random(k, n, 2);

    // One-liner API: plans are built and cached automatically.
    let smm = Smm::<f32>::new();
    let mut c = Mat::<f32>::zeros(m, n);
    smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());

    // Verify against the triple loop.
    let mut c_ref = Mat::<f32>::zeros(m, n);
    gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
    let diff = c.max_abs_diff(&c_ref);
    println!("C = A({m}x{k}) * B({k}x{n}); max |diff| vs naive = {diff:.2e}");
    assert!(diff < 1e-3);

    // Inspect what the planner decided for this shape.
    let plan = SmmPlan::build(m, n, k, &PlanConfig::default());
    println!("\nplan for {m}x{n}x{k}:");
    println!("  micro-kernel   : {}x{}", plan.kernel.mr, plan.kernel.nr);
    println!("  pack A         : {}", plan.pack_a);
    println!("  pack B         : {}", plan.pack_b);
    println!("  kc             : {}", plan.kc);
    println!(
        "  M tiles        : {:?}",
        plan.m_tiles.iter().map(|t| t.logical).collect::<Vec<_>>()
    );
    println!(
        "  N tiles        : {:?}",
        plan.n_tiles.iter().map(|t| t.logical).collect::<Vec<_>>()
    );
    println!("  P2C (Eq. 3)    : {:.4}", plan.p2c);

    // Repeated calls on the same shape reuse the cached plan.
    for _ in 0..100 {
        smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    }
    println!("\ncached plans after 101 calls: {}", smm.cached_plans());

    // Telemetry is on by default: every call was decomposed into
    // plan-lookup / pack / compute spans, so the snapshot shows where
    // the 101 calls actually spent their time (paper Table II style).
    println!("\n{}", smm.stats_report());
}
