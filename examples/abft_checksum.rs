//! Algorithm-Based Fault Tolerance checksums via tall-and-skinny GEMM —
//! the paper's third motivating workload (checksum encoding multiplies
//! by a tall-and-skinny weight matrix).
//!
//! Encodes row checksums of a matrix with `W · A` where `W` is a
//! `2 × M` weight matrix (plain and weighted sums), injects a fault,
//! and shows the checksums localize it.
//!
//! Run with: `cargo run --release --example abft_checksum`

use smm_core::Smm;
use smm_gemm::matrix::Mat;

fn checksums(smm: &Smm<f32>, w: &Mat<f32>, a: &Mat<f32>) -> Mat<f32> {
    // 2 x N = (2 x M) * (M x N): M is tiny relative to N -- exactly the
    // M << N, M << K regime the paper defines as SMM.
    let mut c = Mat::<f32>::zeros(w.rows(), a.cols());
    smm.gemm(1.0, w.as_ref(), a.as_ref(), 0.0, c.as_mut());
    c
}

fn main() {
    let (m, n) = (96, 96);
    let a = Mat::<f32>::random(m, n, 5);
    // Checksum weights: row 0 = all ones, row 1 = 1,2,3,... (distinct
    // weights let the faulty row index be recovered).
    let w = Mat::<f32>::from_fn(2, m, |i, j| if i == 0 { 1.0 } else { (j + 1) as f32 });
    let smm = Smm::<f32>::new();

    let before = checksums(&smm, &w, &a);

    // Inject a single-element fault.
    let (fi, fj, delta) = (37usize, 58usize, 2.5f32);
    let mut faulty = a.clone();
    faulty[(fi, fj)] += delta;
    let after = checksums(&smm, &w, &faulty);

    // Column with a checksum mismatch reveals the fault's column; the
    // ratio of weighted to plain residual reveals the row.
    let mut found = None;
    for j in 0..n {
        let d0 = after[(0, j)] - before[(0, j)];
        let d1 = after[(1, j)] - before[(1, j)];
        if d0.abs() > 1e-3 {
            let row = (d1 / d0).round() as usize - 1;
            found = Some((row, j, d0));
        }
    }

    println!("checksum GEMM shape: 2x{n}x{m} (tall-and-skinny weights)");
    println!("injected fault     : A[{fi},{fj}] += {delta}");
    match found {
        Some((row, col, magnitude)) => {
            println!("detected fault     : A[{row},{col}] (magnitude {magnitude:.2})");
            assert_eq!((row, col), (fi, fj), "ABFT must localize the fault");
            assert!((magnitude - delta).abs() < 1e-2);
        }
        None => panic!("fault went undetected"),
    }
    println!("plans cached       : {}", smm.cached_plans());
    println!("ok: single-element fault localized by SMM checksums");
}
