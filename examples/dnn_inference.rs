//! DNN inference built on SMM — the paper's first motivating workload.
//!
//! A small multi-layer perceptron processes mini-batches: every layer
//! is a small-scale GEMM (`weights · activations`) whose shape repeats
//! for every batch, which is exactly the plan-caching sweet spot.
//!
//! Run with: `cargo run --release --example dnn_inference`

use smm_core::Smm;
use smm_gemm::matrix::Mat;

/// A dense layer: `y = relu(W · x + bias)` with `W: out × in`,
/// `x: in × batch`.
struct Layer {
    weights: Mat<f32>,
    bias: Vec<f32>,
}

impl Layer {
    fn new(out_dim: usize, in_dim: usize, seed: u64) -> Self {
        Layer {
            weights: Mat::random(out_dim, in_dim, seed),
            bias: (0..out_dim).map(|i| (i % 7) as f32 * 0.01).collect(),
        }
    }

    fn forward(&self, smm: &Smm<f32>, x: &Mat<f32>) -> Mat<f32> {
        let batch = x.cols();
        let mut y = Mat::<f32>::zeros(self.weights.rows(), batch);
        smm.gemm(1.0, self.weights.as_ref(), x.as_ref(), 0.0, y.as_mut());
        for j in 0..batch {
            for i in 0..y.rows() {
                let v = (y[(i, j)] + self.bias[i]).max(0.0);
                y[(i, j)] = v;
            }
        }
        y
    }
}

fn main() {
    // 784 -> 128 -> 64 -> 10, batch 16: all layer GEMMs are SMMs with
    // one small dimension (the irregular shapes of the paper's Fig. 10).
    let layers = [
        Layer::new(128, 784, 1),
        Layer::new(64, 128, 2),
        Layer::new(10, 64, 3),
    ];
    let smm = Smm::<f32>::new();
    let batches = 50;
    let batch_size = 16;

    let start = std::time::Instant::now();
    let mut checksum = 0.0f64;
    for b in 0..batches {
        let mut x = Mat::<f32>::random(784, batch_size, 100 + b as u64);
        for layer in &layers {
            x = layer.forward(&smm, &x);
        }
        // "argmax" per sample as the prediction.
        for j in 0..batch_size {
            let mut best = 0;
            for i in 1..x.rows() {
                if x[(i, j)] > x[(best, j)] {
                    best = i;
                }
            }
            checksum += best as f64;
        }
    }
    let elapsed = start.elapsed();

    let flops_per_batch: f64 = [(128, 784), (64, 128), (10, 64)]
        .iter()
        .map(|&(o, i)| 2.0 * o as f64 * i as f64 * batch_size as f64)
        .sum();
    println!("MLP 784-128-64-10, batch {batch_size}, {batches} batches");
    println!("  layer GEMM shapes : 128x16x784, 64x16x128, 10x16x64");
    println!("  plans cached      : {}", smm.cached_plans());
    println!("  wall time         : {elapsed:?}");
    println!(
        "  throughput        : {:.2} Gflops/s",
        flops_per_batch * batches as f64 / elapsed.as_secs_f64() / 1e9
    );
    println!("  prediction sum    : {checksum} (deterministic)");
    assert_eq!(smm.cached_plans(), 3, "one plan per layer shape");
}
