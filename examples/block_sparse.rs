//! Block-sparse matrix multiplication on SMM — the paper's second
//! motivating workload (BCSR formats "substantially benefit from fast
//! SMMs").
//!
//! Builds a Block Compressed Sparse Row matrix with dense `R×R` blocks,
//! multiplies it by a dense matrix using one small GEMM per stored
//! block, and verifies against a densified naive product.
//!
//! Run with: `cargo run --release --example block_sparse`

use smm_core::Smm;
use smm_gemm::gemm_naive;
use smm_gemm::matrix::{Mat, MatMut, MatRef};

const R: usize = 8; // block edge

/// Block Compressed Sparse Row: row-blocks of `R` rows, each with a
/// list of (block-column, dense R×R block).
struct Bcsr {
    block_rows: usize,
    block_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    blocks: Vec<Mat<f32>>,
}

impl Bcsr {
    /// A banded pattern: diagonal plus a couple of off-diagonals.
    fn banded(block_rows: usize, block_cols: usize, seed: u64) -> Self {
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut blocks = Vec::new();
        for br in 0..block_rows {
            for offset in [-2i64, 0, 3] {
                let bc = br as i64 + offset;
                if bc >= 0 && (bc as usize) < block_cols {
                    col_idx.push(bc as usize);
                    blocks.push(Mat::random(R, R, seed + (br * 31 + bc as usize) as u64));
                }
            }
            row_ptr.push(col_idx.len());
        }
        Bcsr {
            block_rows,
            block_cols,
            row_ptr,
            col_idx,
            blocks,
        }
    }

    fn nnz_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn to_dense(&self) -> Mat<f32> {
        let mut d = Mat::zeros(self.block_rows * R, self.block_cols * R);
        for br in 0..self.block_rows {
            for e in self.row_ptr[br]..self.row_ptr[br + 1] {
                let bc = self.col_idx[e];
                let blk = &self.blocks[e];
                for j in 0..R {
                    for i in 0..R {
                        d[(br * R + i, bc * R + j)] = blk[(i, j)];
                    }
                }
            }
        }
        d
    }

    /// `Y += self · X` using one SMM per stored block. All blocks share
    /// one GEMM shape, so a single cached plan serves the whole sweep.
    fn spmm(&self, smm: &Smm<f32>, x: MatRef<'_, f32>, mut y: MatMut<'_, f32>) {
        assert_eq!(x.rows(), self.block_cols * R);
        let ncols = x.cols();
        for br in 0..self.block_rows {
            for e in self.row_ptr[br]..self.row_ptr[br + 1] {
                let bc = self.col_idx[e];
                let xb = x.block(bc * R, 0, R, ncols);
                let yb = y.block_mut(br * R, 0, R, ncols);
                smm.gemm(1.0, self.blocks[e].as_ref(), xb, 1.0, yb);
            }
        }
    }
}

fn main() {
    let (block_rows, block_cols, ncols) = (24, 24, 16);
    let a = Bcsr::banded(block_rows, block_cols, 7);
    let x = Mat::<f32>::random(block_cols * R, ncols, 9);
    let smm = Smm::<f32>::new();

    let start = std::time::Instant::now();
    let mut y = Mat::<f32>::zeros(block_rows * R, ncols);
    a.spmm(&smm, x.as_ref(), y.as_mut());
    let elapsed = start.elapsed();

    // Verify against the densified product.
    let dense = a.to_dense();
    let mut y_ref = Mat::<f32>::zeros(block_rows * R, ncols);
    gemm_naive(1.0, dense.as_ref(), x.as_ref(), 0.0, y_ref.as_mut());
    let diff = y.max_abs_diff(&y_ref);

    let flops = 2.0 * (a.nnz_blocks() * R * R * ncols) as f64;
    println!(
        "BCSR {}x{} blocks of {R}x{R}, {} stored blocks, X has {ncols} cols",
        block_rows,
        block_cols,
        a.nnz_blocks()
    );
    println!("  block GEMM shape : {R}x{ncols}x{R} (P2C-driven: no packing)");
    println!("  plans cached     : {}", smm.cached_plans());
    println!("  max |diff|       : {diff:.2e}");
    println!(
        "  wall time        : {elapsed:?} ({:.2} Gflops/s)",
        flops / elapsed.as_secs_f64() / 1e9
    );
    assert!(diff < 1e-3);
    assert_eq!(smm.cached_plans(), 1, "every block reuses one plan");
}
