//! Simulator-driven auto-tuning (§IV "adaptive code generation").
//!
//! For a handful of SMM shapes, compares the heuristic plan against an
//! exhaustive candidate search measured on the simulated Phytium 2000+,
//! then runs the tuned plan natively and verifies it.
//!
//! Run with: `cargo run --release --example autotune`

use smm_core::{Autotuner, PlanConfig};
use smm_gemm::gemm_naive;
use smm_gemm::matrix::Mat;

fn main() {
    let tuner = Autotuner::new(PlanConfig::default());
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>8} {:>8} {:>7}",
        "shape", "kernel", "heur cycles", "tuned cycles", "gain", "packB", "packA"
    );
    for &(m, n, k) in &[
        (8usize, 8usize, 8usize),
        (24, 24, 24),
        (75, 12, 64),
        (5, 160, 160),
        (160, 5, 160),
        (64, 64, 64),
    ] {
        let t = tuner.tune(m, n, k);
        println!(
            "{:>12} {:>10} {:>12} {:>12} {:>7.2}x {:>8} {:>7}",
            format!("{m}x{n}x{k}"),
            format!("{}x{}", t.plan.kernel.mr, t.plan.kernel.nr),
            t.heuristic_cycles,
            t.cycles,
            t.gain(),
            t.plan.pack_b,
            t.plan.pack_a,
        );

        // The tuned plan must still be exact.
        let a = Mat::<f32>::random(m, k, 11);
        let b = Mat::<f32>::random(k, n, 12);
        let mut c = Mat::<f32>::zeros(m, n);
        let mut c_ref = Mat::<f32>::zeros(m, n);
        smm_core::execute(&t.plan, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }
    println!("\nall tuned plans verified against the naive oracle");
    println!(
        "({} candidate simulations per shape, cached thereafter)",
        29
    );
}
