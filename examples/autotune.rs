//! The persistent two-stage autotuning flow, end to end.
//!
//! IAAT splits tuning across process lifetimes: an **offline** sweep
//! simulates candidate plans over a shape grid and persists the winners
//! to a versioned, checksummed database; the **runtime** stage answers
//! plan-cache misses from that database — exact hit, else
//! nearest-neighbor match in log-space shape distance, else full online
//! tuning whose result is recorded as a delta and persisted, so the
//! *next* process never tunes that shape again.
//!
//! This example walks the whole loop in-process: sweep → save →
//! bit-identical round-trip check → load into an [`Smm`] runtime →
//! exact / NN / refine lookups (verified against the naive oracle) →
//! flush → reload showing the refinement persisted → foreign-ISA load
//! rejected with a typed error.
//!
//! Run with: `cargo run --release --example autotune`

use smm_core::{
    tune_shape, PlanConfig, PlanDb, PlanDbError, Smm, SweepGrid, VectorIsa, DEFAULT_NN_THRESHOLD,
};
use smm_gemm::gemm_naive;
use smm_gemm::matrix::Mat;

/// Run one GEMM through the runtime and verify it against the oracle.
fn gemm_checked(smm: &Smm<f32>, m: usize, n: usize, k: usize) {
    let a = Mat::<f32>::random(m, k, 11);
    let b = Mat::<f32>::random(k, n, 12);
    let mut c = Mat::<f32>::zeros(m, n);
    let mut c_ref = Mat::<f32>::zeros(m, n);
    smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
    assert!(c.max_abs_diff(&c_ref) < 1e-3, "{m}x{n}x{k} diverged");
}

fn main() {
    let dir = std::env::temp_dir().join(format!("smm-autotune-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plans.smmdb");

    // ---- Offline stage: sweep a small grid and persist the winners.
    let cfg = PlanConfig::default();
    let grid = SweepGrid::geometric(4, 32, 3);
    let shapes = grid.shapes();
    println!(
        "sweeping {} shapes (axis {:?}, coverage radius {:.2}, NN threshold {:.2})",
        shapes.len(),
        grid.axis(),
        grid.max_log_radius(),
        DEFAULT_NN_THRESHOLD,
    );
    let mut db = PlanDb::new(cfg.isa);
    for &(m, n, k) in &shapes {
        db.upsert(tune_shape(m, n, k, &cfg).to_entry(4, false));
    }
    db.save(&path).unwrap();

    // The canonical encoding round-trips bit-identically: decoding and
    // re-encoding reproduces the exact bytes, and so does the file.
    let encoded = db.encode();
    let reencoded = PlanDb::decode(&encoded).unwrap().encode();
    assert_eq!(encoded, reencoded, "encode→decode→encode not bit-identical");
    assert_eq!(
        encoded,
        std::fs::read(&path).unwrap(),
        "file differs from encoding"
    );
    println!(
        "saved {} entries ({} bytes), round-trip bit-identical",
        db.len(),
        encoded.len()
    );

    // ---- Runtime stage: a fresh process would start exactly here.
    let smm = Smm::<f32>::builder()
        .telemetry(true)
        .plan_db(&path)
        .expect("database swept for this ISA loads cleanly")
        .build();

    // 1. Exact hit: a swept grid shape builds straight from its entry.
    let (m, n, k) = shapes[0];
    gemm_checked(&smm, m, n, k);
    assert_eq!(smm.tuner_stats().db_hits, 1);
    println!("{m}x{n}x{k}: exact database hit");

    // 2. Nearest-neighbor match: an unswept shape near a grid point
    //    borrows its kernel/packing (blocking is re-derived).
    gemm_checked(&smm, 12, 10, 11);
    assert_eq!(smm.tuner_stats().nn_matches, 1);
    println!("12x10x11: nearest-neighbor match (grid point 11x11x11)");

    // 3. Online refinement: far outside the swept envelope, the source
    //    pays for full simulation once and records a delta.
    gemm_checked(&smm, 160, 160, 160);
    let s = smm.tuner_stats();
    assert_eq!(s.online_refines, 1);
    assert_eq!(s.pending_deltas, 1);
    println!(
        "160x160x160: online refinement ({} pending delta)",
        s.pending_deltas
    );

    // Within this process the shape never reaches the database again:
    // the sharded plan cache in front of the source absorbs the repeat.
    let plan_hits_before = smm.stats().plan_hits;
    gemm_checked(&smm, 160, 160, 160);
    assert_eq!(smm.stats().plan_hits, plan_hits_before + 1);
    assert_eq!(smm.tuner_stats().online_refines, 1, "not re-tuned");

    // ---- Persist refinements (also happens best-effort on drop).
    let flushed = smm.flush_plan_db().unwrap();
    assert_eq!(flushed, Some(1));
    let s = smm.tuner_stats();
    assert_eq!((s.pending_deltas, s.persisted_deltas), (0, 1));
    println!(
        "flushed {} refinement delta to {}",
        s.persisted_deltas,
        path.display()
    );

    // A later process loads the grown database: the refined shape is
    // now an exact hit — tuned once, ever.
    let reloaded = PlanDb::load(&path).unwrap();
    assert_eq!(reloaded.len(), shapes.len() + 1);
    assert!(reloaded.get(160, 160, 160).unwrap().refined);
    let next = Smm::<f32>::builder()
        .telemetry(true)
        .plan_db(&path)
        .unwrap()
        .build();
    gemm_checked(&next, 160, 160, 160);
    let s = next.tuner_stats();
    assert_eq!((s.db_hits, s.online_refines), (1, 0));
    println!("next process: 160x160x160 is an exact hit, no re-tuning");

    // ---- A database swept for another ISA is rejected with a typed
    //      error, never silently cross-wired to the wrong vector width.
    let err = PlanDb::load_for(&path, VectorIsa::sve256()).unwrap_err();
    assert!(matches!(err, PlanDbError::IsaMismatch { .. }));
    println!("sve256 load rejected: {err}");

    std::fs::remove_dir_all(&dir).ok();
    println!("\ntwo-stage flow verified: sweep, persist, match, refine, flush, reload");
}
